//! Error type for graph operations.

use crate::ids::{EdgeId, VertexId};
use std::fmt;

/// Errors produced by [`crate::DynamicGraph`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id was referenced that is not present in the graph.
    UnknownVertex(VertexId),
    /// An edge id was referenced that is not present (possibly expired).
    UnknownEdge(EdgeId),
    /// A vertex was inserted twice with conflicting types.
    VertexTypeConflict {
        /// The offending vertex.
        vertex: VertexId,
        /// The type already recorded for the vertex.
        existing: u32,
        /// The conflicting new type.
        requested: u32,
    },
    /// An edge timestamp was older than the newest edge by more than the
    /// configured window, so inserting it would immediately expire it.
    StaleEdge {
        /// Timestamp of the rejected edge.
        timestamp: u64,
        /// Lower bound of the current window.
        window_start: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            GraphError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            GraphError::VertexTypeConflict {
                vertex,
                existing,
                requested,
            } => write!(
                f,
                "vertex {vertex} already has type {existing}, cannot re-type as {requested}"
            ),
            GraphError::StaleEdge {
                timestamp,
                window_start,
            } => write!(
                f,
                "edge timestamp {timestamp} is older than the window start {window_start}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_human_readable() {
        let e = GraphError::UnknownVertex(VertexId(7));
        assert!(e.to_string().contains("v7"));
        let e = GraphError::UnknownEdge(EdgeId(3));
        assert!(e.to_string().contains("e3"));
        let e = GraphError::VertexTypeConflict {
            vertex: VertexId(1),
            existing: 2,
            requested: 5,
        };
        assert!(e.to_string().contains("already has type 2"));
        let e = GraphError::StaleEdge {
            timestamp: 1,
            window_start: 10,
        };
        assert!(e.to_string().contains("older than the window start"));
    }
}
