//! Randomized property tests for the dynamic graph store.
//!
//! The workspace builds offline, so instead of `proptest` these tests draw a
//! few hundred random stream specifications from a seeded PRNG and check the
//! same invariants on each. Failures print the offending seed so a case can
//! be replayed by hand.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sp_graph::{DynamicGraph, EdgeType, Schema, Timestamp, VertexType};

/// A compact description of a random edge stream.
#[derive(Debug, Clone)]
struct StreamSpec {
    edges: Vec<(u64, u64, u32, u64)>, // (src, dst, edge_type, timestamp)
    window: Option<u64>,
}

fn random_spec(rng: &mut SmallRng) -> StreamSpec {
    let len = rng.gen_range(1usize..200);
    let edges = (0..len)
        .map(|_| {
            (
                rng.gen_range(0u64..20),
                rng.gen_range(0u64..20),
                rng.gen_range(0u32..5),
                rng.gen_range(0u64..1000),
            )
        })
        .collect();
    let window = if rng.gen_bool(0.5) {
        Some(rng.gen_range(1u64..500))
    } else {
        None
    };
    StreamSpec { edges, window }
}

fn build_graph(spec: &StreamSpec) -> DynamicGraph {
    let mut schema = Schema::new();
    let vt = schema.intern_vertex_type("v");
    for t in 0..5 {
        schema.intern_edge_type(&format!("t{t}"));
    }
    let mut g = match spec.window {
        Some(w) => DynamicGraph::with_window(schema, w),
        None => DynamicGraph::new(schema),
    };
    for &(src, dst, et, ts) in &spec.edges {
        let s = g.ensure_vertex_named(&format!("n{src}"), vt);
        let d = g.ensure_vertex_named(&format!("n{dst}"), vt);
        g.add_edge(s, d, EdgeType(et), Timestamp(ts));
        g.expire();
    }
    g
}

/// Runs `check` over a deterministic batch of random stream specs.
fn for_random_specs(cases: u64, check: impl Fn(&StreamSpec, &DynamicGraph)) {
    for seed in 0..cases {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ seed);
        let spec = random_spec(&mut rng);
        let g = build_graph(&spec);
        check(&spec, &g);
    }
}

/// The sum of out-degrees and the sum of in-degrees both equal the number of
/// live edges, and every adjacency entry refers to a live edge.
#[test]
fn adjacency_is_consistent() {
    for_random_specs(100, |spec, g| {
        let out_sum: usize = g.vertices().map(|(v, _)| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|(v, _)| g.in_degree(v)).sum();
        assert_eq!(out_sum, g.num_edges(), "spec: {spec:?}");
        assert_eq!(in_sum, g.num_edges(), "spec: {spec:?}");
        for (v, _) in g.vertices() {
            for inc in g.incident_edges(v) {
                let e = g.edge(inc.edge).expect("adjacency points at live edge");
                assert!(e.touches(v), "spec: {spec:?}");
            }
        }
    });
}

/// After expiry, every live edge is within the window of the newest edge.
#[test]
fn window_invariant_holds() {
    for_random_specs(100, |spec, g| {
        if let Some(w) = g.window() {
            let newest = g.latest_timestamp();
            let cutoff = newest.0.saturating_sub(w);
            for e in g.edges() {
                assert!(
                    e.timestamp.0 >= cutoff,
                    "edge at {} violates window starting at {cutoff}; spec: {spec:?}",
                    e.timestamp.0
                );
            }
        }
    });
}

/// No isolated vertices survive window expiry.
#[test]
fn no_isolated_vertices() {
    for_random_specs(100, |spec, g| {
        for (v, data) in g.vertices() {
            assert!(data.degree() > 0, "vertex {v} is isolated; spec: {spec:?}");
        }
    });
}

/// total_edges_seen is monotone and never smaller than the live count.
#[test]
fn seen_count_dominates_live_count() {
    for_random_specs(100, |spec, g| {
        assert_eq!(g.total_edges_seen(), spec.edges.len() as u64);
        assert!(g.num_edges() as u64 <= g.total_edges_seen());
    });
}

/// Degree stats average equals 2E/V for live graphs.
#[test]
fn degree_stats_matches_handshake_lemma() {
    for_random_specs(100, |spec, g| {
        if g.num_vertices() > 0 {
            let stats = g.degree_stats();
            let expected = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
            assert!(
                (stats.average_degree - expected).abs() < 1e-9,
                "spec: {spec:?}"
            );
        }
    });
}

#[test]
fn vertex_type_wildcard_is_default() {
    assert_eq!(VertexType::default(), VertexType::ANY);
}
