//! Property-based tests for the dynamic graph store.

use proptest::prelude::*;
use sp_graph::{DynamicGraph, EdgeType, Schema, Timestamp, VertexType};

/// A compact description of a random edge stream.
#[derive(Debug, Clone)]
struct StreamSpec {
    edges: Vec<(u64, u64, u32, u64)>, // (src, dst, edge_type, timestamp)
    window: Option<u64>,
}

fn stream_strategy() -> impl Strategy<Value = StreamSpec> {
    let edge = (0u64..20, 0u64..20, 0u32..5, 0u64..1000);
    (proptest::collection::vec(edge, 1..200), proptest::option::of(1u64..500)).prop_map(
        |(edges, window)| StreamSpec { edges, window },
    )
}

fn build_graph(spec: &StreamSpec) -> DynamicGraph {
    let mut schema = Schema::new();
    let vt = schema.intern_vertex_type("v");
    for t in 0..5 {
        schema.intern_edge_type(&format!("t{t}"));
    }
    let mut g = match spec.window {
        Some(w) => DynamicGraph::with_window(schema, w),
        None => DynamicGraph::new(schema),
    };
    for &(src, dst, et, ts) in &spec.edges {
        let s = g.ensure_vertex_named(&format!("n{src}"), vt);
        let d = g.ensure_vertex_named(&format!("n{dst}"), vt);
        g.add_edge(s, d, EdgeType(et), Timestamp(ts));
        g.expire();
    }
    g
}

proptest! {
    /// The sum of out-degrees and the sum of in-degrees both equal the number
    /// of live edges, and every adjacency entry refers to a live edge.
    #[test]
    fn adjacency_is_consistent(spec in stream_strategy()) {
        let g = build_graph(&spec);
        let out_sum: usize = g.vertices().map(|(v, _)| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|(v, _)| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        for (v, _) in g.vertices() {
            for inc in g.incident_edges(v) {
                let e = g.edge(inc.edge).expect("adjacency points at live edge");
                prop_assert!(e.touches(v));
            }
        }
    }

    /// After expiry, every live edge is within the window of the newest edge.
    #[test]
    fn window_invariant_holds(spec in stream_strategy()) {
        let g = build_graph(&spec);
        if let Some(w) = g.window() {
            let newest = g.latest_timestamp();
            let cutoff = newest.0.saturating_sub(w);
            for e in g.edges() {
                prop_assert!(e.timestamp.0 >= cutoff,
                    "edge at {} violates window starting at {}", e.timestamp.0, cutoff);
            }
        }
    }

    /// No isolated vertices survive window expiry.
    #[test]
    fn no_isolated_vertices(spec in stream_strategy()) {
        let g = build_graph(&spec);
        for (v, data) in g.vertices() {
            prop_assert!(data.degree() > 0, "vertex {v} is isolated");
        }
    }

    /// total_edges_seen is monotone and never smaller than the live count.
    #[test]
    fn seen_count_dominates_live_count(spec in stream_strategy()) {
        let g = build_graph(&spec);
        prop_assert_eq!(g.total_edges_seen(), spec.edges.len() as u64);
        prop_assert!(g.num_edges() as u64 <= g.total_edges_seen());
    }

    /// Degree stats average equals 2E/V for live graphs.
    #[test]
    fn degree_stats_matches_handshake_lemma(spec in stream_strategy()) {
        let g = build_graph(&spec);
        if g.num_vertices() > 0 {
            let stats = g.degree_stats();
            let expected = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
            prop_assert!((stats.average_degree - expected).abs() < 1e-9);
        }
    }
}

#[test]
fn vertex_type_wildcard_is_default() {
    assert_eq!(VertexType::default(), VertexType::ANY);
}
