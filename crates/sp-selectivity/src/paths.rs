//! The 2-edge path (wedge) distribution — Algorithm 5, `COUNT-2-EDGE-PATHS`.
//!
//! A 2-edge path is a pair of edges sharing a center vertex; its signature is
//! the unordered pair of (edge type, direction at the center) of the two
//! edges ([`TwoEdgePathSignature`]). The paper computes the distribution with
//! a per-vertex pass over the graph (`O(V(E + k²))`); this module provides
//! that batch computation and an equivalent incremental variant that updates
//! the counts as every edge streams in, which is what the engine and the
//! dataset analysis use.

use serde::{Deserialize, Serialize};
use sp_graph::{Direction, DynamicGraph, EdgeData, EdgeType, VertexId};
use sp_query::{DirectedEdgeType, TwoEdgePathSignature};
use std::collections::HashMap;

/// Counts of 2-edge paths per wedge signature.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TwoEdgePathCounter {
    counts: HashMap<TwoEdgePathSignature, u64>,
    total: u64,
    /// Per-vertex counter of incident directed edge types, used only by the
    /// incremental update path (`Cv` in Algorithm 5).
    #[serde(skip)]
    per_vertex: HashMap<VertexId, HashMap<DirectedEdgeType, u64>>,
}

impl TwoEdgePathCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs Algorithm 5 (`COUNT-2-EDGE-PATHS`) over the current graph: for
    /// every vertex, counts its incident directed edge types and accumulates
    /// `n1*(n1-1)/2` same-type and `n1*n2` cross-type wedges.
    ///
    /// The result replaces any previously accumulated counts. The per-vertex
    /// incidence state of the incremental path is seeded from the snapshot,
    /// so following a `from_graph` with [`TwoEdgePathCounter::observe_edge`]
    /// for *new* edges continues the exact census.
    pub fn from_graph(graph: &DynamicGraph) -> Self {
        let mut counter = Self::new();
        for (v, _) in graph.vertices() {
            // Cv: count of each directed edge type incident to v.
            let mut cv: HashMap<DirectedEdgeType, u64> = HashMap::new();
            for inc in graph.incident_edges(v) {
                *cv.entry(DirectedEdgeType::new(inc.edge_type, inc.direction))
                    .or_insert(0) += 1;
            }
            let mut types: Vec<(DirectedEdgeType, u64)> =
                cv.iter().map(|(&t, &n)| (t, n)).collect();
            types.sort_by_key(|&(t, _)| (t.edge_type.0, t.direction));
            for (i, &(t1, n1)) in types.iter().enumerate() {
                // Same-type pairs: C(n1, 2).
                let same = n1 * n1.saturating_sub(1) / 2;
                counter.add(TwoEdgePathSignature::new(t1, t1), same);
                // Cross-type pairs with lexically greater types: n1 * n2.
                for &(t2, n2) in &types[i + 1..] {
                    counter.add(TwoEdgePathSignature::new(t1, t2), n1 * n2);
                }
            }
            if !cv.is_empty() {
                counter.per_vertex.insert(v, cv);
            }
        }
        counter
    }

    /// Incremental update: call *after* the edge has been inserted into the
    /// graph (or independently of any graph). The new edge forms one new
    /// wedge with every edge already incident to each of its endpoints.
    pub fn observe_edge(&mut self, edge: &EdgeData) {
        let endpoints: &[(VertexId, Direction)] = &[
            (edge.src, Direction::Outgoing),
            (edge.dst, Direction::Incoming),
        ];
        for &(v, dir) in endpoints {
            let new_type = DirectedEdgeType::new(edge.edge_type, dir);
            // New wedges centered at v: pair the new edge with every existing
            // incident edge.
            let additions: Vec<(TwoEdgePathSignature, u64)> = self
                .per_vertex
                .entry(v)
                .or_default()
                .iter()
                .map(|(&t, &n)| (TwoEdgePathSignature::new(new_type, t), n))
                .collect();
            for (sig, n) in additions {
                self.add(sig, n);
            }
            *self
                .per_vertex
                .entry(v)
                .or_default()
                .entry(new_type)
                .or_insert(0) += 1;
        }
    }

    fn add(&mut self, sig: TwoEdgePathSignature, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(sig).or_insert(0) += n;
        self.total += n;
    }

    /// Halves every wedge count (integer division), dropping signatures that
    /// reach zero, and recomputes the total — the decay step behind
    /// [`StatsMode::Decayed`](crate::StatsMode). The per-vertex incidence
    /// counters the incremental path uses are halved as well, so wedges
    /// formed by future edges are weighted toward recent structure; under
    /// decay the incremental counts are therefore a recency-weighted
    /// approximation rather than the exact census of
    /// [`TwoEdgePathCounter::from_graph`].
    pub fn halve(&mut self) {
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
        self.total = self.counts.values().sum();
        for per in self.per_vertex.values_mut() {
            per.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
        self.per_vertex.retain(|_, per| !per.is_empty());
    }

    /// Count of wedges with the given signature.
    pub fn count(&self, sig: &TwoEdgePathSignature) -> u64 {
        self.counts.get(sig).copied().unwrap_or(0)
    }

    /// Total number of wedges counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct wedge signatures observed (the "unique 2-edge
    /// paths" counts reported in Section 6.3: 14 for NYTimes, 62 for netflow,
    /// 676 for LSBench).
    pub fn num_signatures(&self) -> usize {
        self.counts.len()
    }

    /// Selectivity of a wedge: its frequency over the total number of wedges,
    /// with a pseudo-count of 1 for unseen signatures.
    pub fn selectivity(&self, sig: &TwoEdgePathSignature) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.count(sig).max(1) as f64 / self.total as f64
    }

    /// `(signature, count)` pairs sorted by descending count — the
    /// distribution plotted in Figure 7.
    pub fn descending(&self) -> Vec<(TwoEdgePathSignature, u64)> {
        let mut v: Vec<(TwoEdgePathSignature, u64)> =
            self.counts.iter().map(|(&s, &c)| (s, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// `(signature, count)` pairs sorted by ascending count — rarest wedges
    /// first, the order the decomposition consumes 2-edge primitives in.
    pub fn ascending(&self) -> Vec<(TwoEdgePathSignature, u64)> {
        let mut v = self.descending();
        v.reverse();
        v
    }

    /// Convenience constructor of a wedge signature from raw components.
    pub fn signature(
        a: EdgeType,
        a_dir: Direction,
        b: EdgeType,
        b_dir: Direction,
    ) -> TwoEdgePathSignature {
        TwoEdgePathSignature::new(
            DirectedEdgeType::new(a, a_dir),
            DirectedEdgeType::new(b, b_dir),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{Schema, Timestamp};

    fn star_graph(k: u64) -> DynamicGraph {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("ip");
        schema.intern_edge_type("tcp");
        let tcp = schema.edge_type("tcp").unwrap();
        let mut g = DynamicGraph::new(schema);
        let hub = g.add_vertex(vt);
        for i in 0..k {
            let leaf = g.add_vertex(vt);
            g.add_edge(hub, leaf, tcp, Timestamp(i));
        }
        g
    }

    #[test]
    fn star_wedge_count_is_choose_two() {
        let g = star_graph(5);
        let c = TwoEdgePathCounter::from_graph(&g);
        // At the hub: C(5,2)=10 out-out wedges. Each leaf has a single
        // incident edge, so no other wedges.
        assert_eq!(c.total(), 10);
        let tcp = g.schema().edge_type("tcp").unwrap();
        let sig = TwoEdgePathCounter::signature(tcp, Direction::Outgoing, tcp, Direction::Outgoing);
        assert_eq!(c.count(&sig), 10);
        assert_eq!(c.num_signatures(), 1);
    }

    #[test]
    fn cross_type_wedges_are_counted_with_directions() {
        // a -tcp-> b -udp-> c : at b, one incoming tcp and one outgoing udp.
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let udp = schema.intern_edge_type("udp");
        let mut g = DynamicGraph::new(schema);
        let a = g.add_vertex(vt);
        let b = g.add_vertex(vt);
        let c = g.add_vertex(vt);
        g.add_edge(a, b, tcp, Timestamp(1));
        g.add_edge(b, c, udp, Timestamp(2));
        let counter = TwoEdgePathCounter::from_graph(&g);
        assert_eq!(counter.total(), 1);
        let sig = TwoEdgePathCounter::signature(tcp, Direction::Incoming, udp, Direction::Outgoing);
        assert_eq!(counter.count(&sig), 1);
        // The out-out variant was never observed.
        let other =
            TwoEdgePathCounter::signature(tcp, Direction::Outgoing, udp, Direction::Outgoing);
        assert_eq!(counter.count(&other), 0);
    }

    #[test]
    fn incremental_matches_batch_on_random_like_graph() {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let types: Vec<EdgeType> = (0..3)
            .map(|i| schema.intern_edge_type(&format!("t{i}")))
            .collect();
        let mut g = DynamicGraph::new(schema);
        let vs: Vec<VertexId> = (0..8).map(|_| g.add_vertex(vt)).collect();
        let mut incremental = TwoEdgePathCounter::new();
        // A deterministic pseudo-random edge pattern.
        let mut x: u64 = 7;
        for i in 0..60u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = vs[(x >> 33) as usize % vs.len()];
            let mut y = x ^ (i << 7);
            y = y.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let d = vs[(y >> 33) as usize % vs.len()];
            if s == d {
                continue;
            }
            let t = types[(i % 3) as usize];
            let e = g.add_edge(s, d, t, Timestamp(i));
            let data = *g.edge(e).unwrap();
            incremental.observe_edge(&data);
        }
        let batch = TwoEdgePathCounter::from_graph(&g);
        assert_eq!(incremental.total(), batch.total());
        for (sig, count) in batch.descending() {
            assert_eq!(incremental.count(&sig), count, "mismatch for {sig:?}");
        }
    }

    #[test]
    fn selectivity_and_pseudo_count() {
        let g = star_graph(3);
        let c = TwoEdgePathCounter::from_graph(&g);
        let tcp = g.schema().edge_type("tcp").unwrap();
        let seen =
            TwoEdgePathCounter::signature(tcp, Direction::Outgoing, tcp, Direction::Outgoing);
        assert!((c.selectivity(&seen) - 1.0).abs() < 1e-12);
        let unseen =
            TwoEdgePathCounter::signature(tcp, Direction::Incoming, tcp, Direction::Incoming);
        assert!(c.selectivity(&unseen) > 0.0);
        assert!(c.selectivity(&unseen) < 1.0);
    }

    #[test]
    fn empty_counter_defaults() {
        let c = TwoEdgePathCounter::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.num_signatures(), 0);
        let sig = TwoEdgePathCounter::signature(
            EdgeType(0),
            Direction::Outgoing,
            EdgeType(0),
            Direction::Outgoing,
        );
        assert_eq!(c.selectivity(&sig), 1.0);
    }

    #[test]
    fn descending_is_sorted() {
        // Build a graph with two wedge types of different frequencies.
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let a_t = schema.intern_edge_type("a");
        let b_t = schema.intern_edge_type("b");
        let mut g = DynamicGraph::new(schema);
        let hub = g.add_vertex(vt);
        for i in 0..4 {
            let leaf = g.add_vertex(vt);
            g.add_edge(hub, leaf, a_t, Timestamp(i));
        }
        let leaf = g.add_vertex(vt);
        g.add_edge(hub, leaf, b_t, Timestamp(10));
        let c = TwoEdgePathCounter::from_graph(&g);
        let desc = c.descending();
        assert!(desc.windows(2).all(|w| w[0].1 >= w[1].1));
        let asc = c.ascending();
        assert!(asc.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(desc.len(), asc.len());
    }
}
