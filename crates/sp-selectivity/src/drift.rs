//! Selectivity-drift detection: when the moving statistics stop agreeing
//! with the plan they produced.
//!
//! The decomposition order of a continuous query is chosen from the stream
//! statistics *at registration time*; on a drifting stream those statistics
//! go stale and the SJ-Tree keeps searching its least selective leaf first.
//! A [`DriftDetector`] watches, per query, the two signals that feed the
//! planner:
//!
//! * the **frequency ranking** of the query's candidate primitives (every
//!   single-edge primitive and every wedge its edges can form) — the order
//!   `decompose` consumes primitives in, so a ranking change is a necessary
//!   condition for the leaf order to change;
//! * the **Relative Selectivity** ξ of the query's 2-edge vs 1-edge
//!   decomposition relative to the `choose_strategy` threshold — a
//!   side-flip changes the `Auto` strategy decision itself.
//!
//! The detector is deliberately cheap (a frequency sort over a handful of
//! primitives) and conservative: it *fires* when either signal moved, and
//! the caller then re-plans authoritatively (re-running the decomposition)
//! to decide whether the plan really changed. Hysteresis
//! ([`DriftConfig::confirm_checks`]) suppresses flapping on noisy
//! borderline rankings.

use crate::estimator::SelectivityEstimator;
use serde::{Deserialize, Serialize};
use sp_query::Primitive;

/// Tunables of a [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Stream edges between drift checks. The detector itself is cadence
    /// free — this is the interval honored by the callers that own the edge
    /// loop (`StreamProcessor`, the parallel runtime facade).
    pub check_interval: u64,
    /// Minimum number of edges the estimator must have observed over its
    /// lifetime ([`SelectivityEstimator::lifetime_edges_observed`], which
    /// never decays) before a check can fire; prevents re-planning off a
    /// near-empty histogram.
    pub min_observations: u64,
    /// Number of consecutive checks that must agree the signal moved before
    /// the detector fires (1 = fire immediately).
    pub confirm_checks: u32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            check_interval: 2_048,
            min_observations: 512,
            confirm_checks: 1,
        }
    }
}

/// Cumulative bookkeeping of one [`DriftDetector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftStats {
    /// Checks evaluated (post `min_observations` gate).
    pub checks: u64,
    /// Checks that fired (after hysteresis).
    pub drifts: u64,
    /// Baseline rebases.
    pub rebases: u64,
}

/// The recorded baseline a detector compares the live statistics against.
#[derive(Debug, Clone)]
struct Baseline {
    tracked: Vec<Primitive>,
    ranking: Vec<usize>,
    tk_leaves: Vec<Primitive>,
    t1_leaves: Vec<Primitive>,
    threshold: f64,
    below_threshold: bool,
}

/// Detects when the selectivity ranking of a query's primitives (or the
/// Relative Selectivity side of the `choose_strategy` threshold) has moved
/// away from a recorded baseline; the caller re-plans authoritatively when
/// it fires (see the module-level discussion above for the division of
/// labour).
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    baseline: Option<Baseline>,
    pending: u32,
    stats: DriftStats,
}

impl DriftDetector {
    /// Creates a detector with no baseline; [`DriftDetector::check`] returns
    /// `false` until the first [`DriftDetector::rebase`].
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            baseline: None,
            pending: 0,
            stats: DriftStats::default(),
        }
    }

    /// The configuration this detector was built with.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// Cumulative check/fire counters.
    pub fn stats(&self) -> DriftStats {
        self.stats
    }

    /// Records the current statistics as the baseline: the frequency ranking
    /// of `tracked` and which side of `threshold` the Relative Selectivity
    /// ξ(`tk_leaves`, `t1_leaves`) falls on. Call after (re)planning the
    /// query so the detector measures movement *since the active plan was
    /// chosen*.
    pub fn rebase(
        &mut self,
        estimator: &SelectivityEstimator,
        tracked: Vec<Primitive>,
        tk_leaves: Vec<Primitive>,
        t1_leaves: Vec<Primitive>,
        threshold: f64,
    ) {
        let ranking = Self::ranking(estimator, &tracked);
        let xi = estimator.relative_selectivity(tk_leaves.iter(), t1_leaves.iter());
        self.baseline = Some(Baseline {
            tracked,
            ranking,
            tk_leaves,
            t1_leaves,
            threshold,
            below_threshold: xi < threshold,
        });
        self.pending = 0;
        self.stats.rebases += 1;
    }

    /// The frequency ranking of a primitive set: the indices of `primitives`
    /// ordered rarest first, with ties broken by position so equal
    /// frequencies never flap the ranking.
    pub fn ranking(estimator: &SelectivityEstimator, primitives: &[Primitive]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..primitives.len()).collect();
        order.sort_by_key(|&i| (estimator.frequency(&primitives[i]), i));
        order
    }

    /// Compares the live statistics against the baseline. Returns `true`
    /// when drift is confirmed: the estimator has seen at least
    /// [`DriftConfig::min_observations`] edges, the ranking changed or ξ
    /// crossed the threshold, and the change persisted for
    /// [`DriftConfig::confirm_checks`] consecutive checks. Without a
    /// baseline (no [`DriftDetector::rebase`] yet) it returns `false`.
    pub fn check(&mut self, estimator: &SelectivityEstimator) -> bool {
        let Some(baseline) = &self.baseline else {
            return false;
        };
        // Gate on the lifetime count: the decayed histogram total is capped
        // near twice the decay interval, which would permanently disable
        // detection for any threshold above that.
        if estimator.lifetime_edges_observed() < self.config.min_observations {
            return false;
        }
        self.stats.checks += 1;
        let ranking = Self::ranking(estimator, &baseline.tracked);
        let xi =
            estimator.relative_selectivity(baseline.tk_leaves.iter(), baseline.t1_leaves.iter());
        let moved =
            ranking != baseline.ranking || (xi < baseline.threshold) != baseline.below_threshold;
        if !moved {
            self.pending = 0;
            return false;
        }
        self.pending += 1;
        if self.pending < self.config.confirm_checks {
            return false;
        }
        self.pending = 0;
        self.stats.drifts += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::StatsMode;
    use sp_graph::{EdgeData, EdgeId, EdgeType, Timestamp, VertexId};

    fn edge(ty: u32, src: u64, dst: u64, ts: u64) -> EdgeData {
        EdgeData {
            id: EdgeId(src * 10_000 + dst),
            src: VertexId(src),
            dst: VertexId(dst),
            edge_type: EdgeType(ty),
            timestamp: Timestamp(ts),
        }
    }

    fn feed(est: &mut SelectivityEstimator, ty: u32, n: u64, base: u64) {
        for i in 0..n {
            est.observe_edge(&edge(ty, base + 2 * i, base + 2 * i + 1, i));
        }
    }

    fn single(ty: u32) -> Primitive {
        Primitive::SingleEdge(EdgeType(ty))
    }

    fn config(min: u64, confirm: u32) -> DriftConfig {
        DriftConfig {
            check_interval: 1,
            min_observations: min,
            confirm_checks: confirm,
        }
    }

    #[test]
    fn stable_stream_never_fires() {
        let mut est = SelectivityEstimator::new();
        feed(&mut est, 0, 90, 0);
        feed(&mut est, 1, 10, 10_000);
        let mut d = DriftDetector::new(config(1, 1));
        let tracked = vec![single(0), single(1)];
        d.rebase(&est, tracked, vec![single(1)], vec![single(0)], 1e-3);
        // More of the same mix: ranking unchanged.
        feed(&mut est, 0, 90, 20_000);
        feed(&mut est, 1, 10, 30_000);
        assert!(!d.check(&est));
        assert_eq!(d.stats().drifts, 0);
        assert_eq!(d.stats().checks, 1);
    }

    #[test]
    fn frequency_flip_fires() {
        let mut est = SelectivityEstimator::new().with_mode(StatsMode::Decayed(64));
        feed(&mut est, 0, 90, 0);
        feed(&mut est, 1, 10, 10_000);
        let mut d = DriftDetector::new(config(1, 1));
        d.rebase(
            &est,
            vec![single(0), single(1)],
            vec![single(1)],
            vec![single(0)],
            1e-3,
        );
        // The mix inverts; with decay the ranking flips.
        feed(&mut est, 1, 400, 20_000);
        assert!(d.check(&est), "inverted mix must register as drift");
        assert_eq!(d.stats().drifts, 1);
    }

    #[test]
    fn ties_break_deterministically_and_do_not_flap() {
        let mut est = SelectivityEstimator::new();
        // Two primitives with *equal* counts: the ranking tie-breaks by
        // index, so repeated checks see the identical ranking.
        feed(&mut est, 0, 50, 0);
        feed(&mut est, 1, 50, 10_000);
        let mut d = DriftDetector::new(config(1, 1));
        d.rebase(
            &est,
            vec![single(0), single(1)],
            vec![single(1)],
            vec![single(0)],
            1e-3,
        );
        // Keep the counts tied while the stream advances.
        for round in 0..5u64 {
            feed(&mut est, 0, 7, 20_000 + round * 1_000);
            feed(&mut est, 1, 7, 50_000 + round * 1_000);
            assert!(!d.check(&est), "tied ranking flapped at round {round}");
        }
    }

    #[test]
    fn out_of_order_timestamps_do_not_affect_detection() {
        // Drift detection is count-driven: two streams with the same edge
        // multiset but scrambled timestamps produce identical rankings.
        let ordered = {
            let mut est = SelectivityEstimator::new();
            for i in 0..60u64 {
                est.observe_edge(&edge((i % 3) as u32, 2 * i, 2 * i + 1, i));
            }
            est
        };
        let scrambled = {
            let mut est = SelectivityEstimator::new();
            for i in 0..60u64 {
                // Timestamps jump around arbitrarily.
                est.observe_edge(&edge((i % 3) as u32, 2 * i, 2 * i + 1, (i * 37) % 11));
            }
            est
        };
        let tracked = vec![single(0), single(1), single(2)];
        assert_eq!(
            DriftDetector::ranking(&ordered, &tracked),
            DriftDetector::ranking(&scrambled, &tracked)
        );
        let mut d = DriftDetector::new(config(1, 1));
        d.rebase(&ordered, tracked, vec![single(0)], vec![single(1)], 1e-3);
        assert!(!d.check(&scrambled));
    }

    #[test]
    fn hysteresis_requires_consecutive_confirmations() {
        let mut est = SelectivityEstimator::new().with_mode(StatsMode::Decayed(32));
        feed(&mut est, 0, 80, 0);
        feed(&mut est, 1, 20, 10_000);
        let mut d = DriftDetector::new(config(1, 2));
        d.rebase(
            &est,
            vec![single(0), single(1)],
            vec![single(1)],
            vec![single(0)],
            1e-3,
        );
        feed(&mut est, 1, 300, 20_000);
        // First check observes the change but waits for confirmation.
        assert!(!d.check(&est));
        // Second consecutive check confirms.
        assert!(d.check(&est));
        // After firing, the pending counter restarts.
        assert!(!d.check(&est));
        assert!(d.check(&est));
    }

    #[test]
    fn min_observations_gates_checks() {
        let mut est = SelectivityEstimator::new();
        feed(&mut est, 0, 5, 0);
        let mut d = DriftDetector::new(config(1_000, 1));
        d.rebase(
            &est,
            vec![single(0), single(1)],
            vec![single(1)],
            vec![single(0)],
            1e-3,
        );
        feed(&mut est, 1, 50, 10_000);
        assert!(!d.check(&est), "below min_observations nothing fires");
        assert_eq!(d.stats().checks, 0);
    }

    #[test]
    fn min_observations_gate_survives_decay() {
        // Regression: the decayed histogram total is capped near 2×interval,
        // so gating on it would permanently disable detection whenever
        // min_observations exceeds that cap. The gate must use the lifetime
        // count instead.
        let interval = 64u64;
        let mut est = SelectivityEstimator::new().with_mode(StatsMode::Decayed(interval));
        feed(&mut est, 0, 90, 0);
        feed(&mut est, 1, 10, 10_000);
        // min_observations far above the decay cap; below the lifetime the
        // stream will eventually reach.
        let min = 300u64;
        assert!(min > 2 * interval);
        let mut d = DriftDetector::new(config(min, 1));
        d.rebase(
            &est,
            vec![single(0), single(1)],
            vec![single(1)],
            vec![single(0)],
            1e-3,
        );
        // Not warmed up yet: gated, not even counted as a check.
        assert!(!d.check(&est));
        assert_eq!(d.stats().checks, 0);
        // Invert the mix; the lifetime passes the gate long after the
        // decayed total has stopped growing, and the flip must register.
        feed(&mut est, 1, 400, 20_000);
        assert!(est.num_edges_observed() < 2 * interval, "decay cap holds");
        assert!(est.lifetime_edges_observed() >= min);
        assert!(d.check(&est), "lifetime-gated detection must stay alive");
    }

    #[test]
    fn no_baseline_means_no_drift() {
        let est = SelectivityEstimator::new();
        let mut d = DriftDetector::new(DriftConfig::default());
        assert!(!d.check(&est));
        assert_eq!(d.stats(), DriftStats::default());
    }
}
