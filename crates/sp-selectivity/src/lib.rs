//! # sp-selectivity — distributional statistics of a graph stream
//!
//! The paper's central idea is to drive the query-processing strategy from
//! *subgraph distributional statistics* that are cheap to collect from the
//! stream (Section 5):
//!
//! * the **single-edge histogram** — a count per edge type
//!   ([`EdgeTypeHistogram`]);
//! * the **2-edge path distribution** — a count per wedge signature, computed
//!   by Algorithm 5's `COUNT-2-EDGE-PATHS` ([`TwoEdgePathCounter`]) or
//!   maintained incrementally as edges stream in
//!   ([`TwoEdgePathCounter::observe_edge`]);
//! * the derived metrics **subgraph selectivity** (frequency of a primitive
//!   divided by the total number of same-size primitives), **Expected
//!   Selectivity** Ŝ(T) = ∏ leaf selectivities, and **Relative Selectivity**
//!   ξ(Tk,T1) = Ŝ(Tk)/Ŝ(T1) ([`SelectivityEstimator`]).
//!
//! The crate also provides [`EdgeDistributionTimeline`], the per-interval edge
//! type counts plotted in Figure 6, and helpers for reasoning about the
//! stability of the selectivity order over time (Section 6.3). When that
//! stability assumption does *not* hold, [`StatsMode::Decayed`] makes the
//! estimator an exponentially weighted window over the recent stream and
//! [`DriftDetector`] reports when the ranking (or the strategy-selection
//! threshold side) a query's plan was built on has moved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drift;
mod estimator;
mod histogram;
mod paths;
mod timeline;

pub use drift::{DriftConfig, DriftDetector, DriftStats};
pub use estimator::{DecompositionSelectivity, SelectivityEstimator, StatsMode};
pub use histogram::EdgeTypeHistogram;
pub use paths::TwoEdgePathCounter;
pub use timeline::EdgeDistributionTimeline;
