//! Per-interval edge-type distribution over the lifetime of a stream.
//!
//! Figure 6 of the paper plots, for each dataset, the (non-cumulative) count
//! of every edge type in consecutive fixed-size intervals of the stream, to
//! show that "the relative order of different types of edges stays similar
//! even as the graph evolves". [`EdgeDistributionTimeline`] collects exactly
//! those series.

use crate::histogram::EdgeTypeHistogram;
use serde::{Deserialize, Serialize};
use sp_graph::EdgeType;

/// Collects one [`EdgeTypeHistogram`] per interval of `interval` consecutive
/// edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeDistributionTimeline {
    interval: u64,
    seen_in_current: u64,
    current: EdgeTypeHistogram,
    snapshots: Vec<EdgeTypeHistogram>,
}

impl EdgeDistributionTimeline {
    /// Creates a timeline that snapshots the edge-type counts every
    /// `interval` edges (10 000 for NYTimes, 100 000 for CAIDA, 1 000 000 for
    /// LSBench in the paper).
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        Self {
            interval,
            seen_in_current: 0,
            current: EdgeTypeHistogram::new(),
            snapshots: Vec::new(),
        }
    }

    /// Records one streaming edge of the given type.
    pub fn observe(&mut self, edge_type: EdgeType) {
        self.current.observe(edge_type);
        self.seen_in_current += 1;
        if self.seen_in_current == self.interval {
            self.flush();
        }
    }

    /// Closes the current (possibly partial) interval, if non-empty.
    pub fn finish(&mut self) {
        if self.seen_in_current > 0 {
            self.flush();
        }
    }

    fn flush(&mut self) {
        let full = std::mem::take(&mut self.current);
        self.snapshots.push(full);
        self.seen_in_current = 0;
    }

    /// Returns the completed interval histograms in stream order.
    pub fn snapshots(&self) -> &[EdgeTypeHistogram] {
        &self.snapshots
    }

    /// Number of completed intervals.
    pub fn num_intervals(&self) -> usize {
        self.snapshots.len()
    }

    /// The interval width in edges.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The count series for one edge type across all completed intervals —
    /// one line of Figure 6.
    pub fn series(&self, edge_type: EdgeType) -> Vec<u64> {
        self.snapshots.iter().map(|h| h.count(edge_type)).collect()
    }

    /// Mean rank-order agreement between consecutive snapshots: 1.0 means the
    /// selectivity order of edge types never changed across the stream
    /// (Section 6.3's stability observation).
    pub fn rank_stability(&self) -> f64 {
        if self.snapshots.len() < 2 {
            return 1.0;
        }
        let mut total = 0.0;
        let mut pairs = 0usize;
        for w in self.snapshots.windows(2) {
            let a = w[0].rank_order();
            let b = w[1].rank_order();
            total += EdgeTypeHistogram::rank_agreement(&a, &b);
            pairs += 1;
        }
        total / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_cut_every_interval() {
        let mut t = EdgeDistributionTimeline::new(10);
        for i in 0..35 {
            t.observe(EdgeType((i % 3) as u32));
        }
        assert_eq!(t.num_intervals(), 3);
        t.finish();
        assert_eq!(t.num_intervals(), 4);
        // The last partial interval holds the remaining 5 edges.
        assert_eq!(t.snapshots()[3].total(), 5);
        assert_eq!(t.interval(), 10);
    }

    #[test]
    fn finish_on_empty_tail_adds_nothing() {
        let mut t = EdgeDistributionTimeline::new(5);
        for _ in 0..10 {
            t.observe(EdgeType(0));
        }
        t.finish();
        assert_eq!(t.num_intervals(), 2);
    }

    #[test]
    fn series_extracts_counts_per_type() {
        let mut t = EdgeDistributionTimeline::new(4);
        // interval 1: 3 of type0, 1 of type1; interval 2: 4 of type1.
        for _ in 0..3 {
            t.observe(EdgeType(0));
        }
        t.observe(EdgeType(1));
        for _ in 0..4 {
            t.observe(EdgeType(1));
        }
        assert_eq!(t.series(EdgeType(0)), vec![3, 0]);
        assert_eq!(t.series(EdgeType(1)), vec![1, 4]);
    }

    #[test]
    fn stable_stream_has_perfect_rank_stability() {
        let mut t = EdgeDistributionTimeline::new(100);
        for i in 0..1000u32 {
            // Always 9:1 ratio between type 0 and type 1.
            let ty = if i % 10 == 0 {
                EdgeType(1)
            } else {
                EdgeType(0)
            };
            t.observe(ty);
        }
        assert!((t.rank_stability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shifting_stream_has_reduced_rank_stability() {
        let mut t = EdgeDistributionTimeline::new(100);
        // First half dominated by type 0, second half by type 1 (like the
        // LSBench phase shift).
        for i in 0..400u32 {
            let ty = if i % 10 == 0 {
                EdgeType(1)
            } else {
                EdgeType(0)
            };
            t.observe(ty);
        }
        for i in 0..400u32 {
            let ty = if i % 10 == 0 {
                EdgeType(0)
            } else {
                EdgeType(1)
            };
            t.observe(ty);
        }
        let s = t.rank_stability();
        assert!(s < 1.0, "expected a rank flip, stability={s}");
    }

    #[test]
    fn single_interval_is_trivially_stable() {
        let mut t = EdgeDistributionTimeline::new(1000);
        for _ in 0..10 {
            t.observe(EdgeType(0));
        }
        t.finish();
        assert_eq!(t.rank_stability(), 1.0);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_is_rejected() {
        let _ = EdgeDistributionTimeline::new(0);
    }

    #[test]
    fn tied_counts_are_rank_stable_across_intervals() {
        // Two types arrive in exactly equal volume in every interval. The
        // rank order tie-breaks by type id, so consecutive snapshots agree
        // perfectly — ties must not read as drift.
        let mut t = EdgeDistributionTimeline::new(20);
        for _ in 0..5 {
            for i in 0..20u32 {
                t.observe(EdgeType(i % 2));
            }
        }
        assert_eq!(t.num_intervals(), 5);
        assert!((t.rank_stability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tie_broken_then_restored_reduces_stability_once() {
        // Interval 1: tie (order by id: 0,1). Interval 2: type 1 rarer
        // (order: 1,0). Interval 3: tie again (order: 0,1). Two of the two
        // consecutive pairs disagree completely.
        let mut t = EdgeDistributionTimeline::new(10);
        for i in 0..10u32 {
            t.observe(EdgeType(i % 2)); // 5 / 5
        }
        for i in 0..10u32 {
            t.observe(EdgeType(u32::from(i % 10 == 0))); // 9 / 1
        }
        for i in 0..10u32 {
            t.observe(EdgeType(i % 2)); // 5 / 5
        }
        let s = t.rank_stability();
        assert!((s - 0.0).abs() < 1e-12, "both transitions flip, s={s}");
    }

    #[test]
    fn arrival_order_not_timestamps_drives_stability() {
        // The timeline cuts intervals by *arrival position* — observe() does
        // not even take a timestamp, so an out-of-order stream (late event
        // timestamps arriving early) is measured by when the edges arrive,
        // which is the signal drift detection needs. Same multiset, two
        // arrival orders:
        let mut interleaved = EdgeDistributionTimeline::new(100);
        for i in 0..400u32 {
            let ty = u32::from(i % 10 == 0);
            interleaved.observe(EdgeType(ty));
        }
        assert!((interleaved.rank_stability() - 1.0).abs() < 1e-12);

        // ... but the same 360/40 mix arriving clustered (the rare type's
        // edges all at the end, e.g. replayed with wildly out-of-order
        // timestamps) flips the final interval's ranking.
        let mut clustered = EdgeDistributionTimeline::new(100);
        for _ in 0..360u32 {
            clustered.observe(EdgeType(0));
        }
        for _ in 0..40u32 {
            clustered.observe(EdgeType(1));
        }
        assert!(clustered.rank_stability() < 1.0);
    }
}
