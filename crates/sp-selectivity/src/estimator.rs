//! The selectivity estimator: single place the engine and the decomposition
//! ask "how frequent is this primitive?".

use crate::histogram::EdgeTypeHistogram;
use crate::paths::TwoEdgePathCounter;
use serde::{Deserialize, Serialize};
use sp_graph::{DynamicGraph, EdgeData};
use sp_query::{LeafSignature, Primitive};

/// How the estimator weighs history when accumulating statistics.
///
/// The paper assumes the selectivity order is stable over the stream
/// (Section 5.1) and accumulates counts forever; that assumption breaks on
/// drifting streams, where a query registered early keeps a leaf ordering
/// the stream has since invalidated. [`StatsMode::Decayed`] turns the
/// estimator into a *moving* signal: every `interval` observed edges, every
/// count is halved, so the statistics form an exponentially weighted window
/// (weight `2^-k` for edges `k` intervals old) and the drift detector can
/// see ranking changes instead of being drowned out by history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatsMode {
    /// Counts accumulate forever (the paper's methodology; the default).
    #[default]
    Cumulative,
    /// Every `N` observed edges (the variant's payload), all counts are
    /// halved — exponential decay with half-life `N` edges. The interval
    /// must be positive.
    Decayed(u64),
}

/// Distributional statistics of a graph stream: the 1-edge histogram and the
/// 2-edge path distribution, plus the Expected / Relative Selectivity metrics
/// derived from them (Section 5.2).
///
/// The estimator is typically populated from a prefix of the stream
/// ([`SelectivityEstimator::observe_edge`]) or from a whole graph snapshot
/// ([`SelectivityEstimator::from_graph`]); the paper assumes "the selectivity
/// order remains the same for the dynamic graph when we perform the query
/// processing" (Section 5.1), and Section 6.3 validates that assumption. For
/// drifting streams, [`StatsMode::Decayed`] keeps the statistics tracking
/// the recent stream instead.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SelectivityEstimator {
    edges: EdgeTypeHistogram,
    paths: TwoEdgePathCounter,
    mode: StatsMode,
    since_decay: u64,
    /// Monotonic count of edges ever observed (snapshot + incremental);
    /// unlike the histogram total it never decays.
    lifetime_observed: u64,
}

/// A summary of the selectivity of one SJ-Tree decomposition: the per-leaf
/// selectivities and their product (Expected Selectivity, Equation 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecompositionSelectivity {
    /// Selectivity of each leaf primitive, in leaf order.
    pub leaf_selectivities: Vec<f64>,
    /// Product of the leaf selectivities — Ŝ(T).
    pub expected: f64,
}

impl DecompositionSelectivity {
    /// Relative Selectivity ξ(Tk, T1) = Ŝ(Tk) / Ŝ(T1) (Equation 2).
    pub fn relative_to(&self, baseline: &DecompositionSelectivity) -> f64 {
        if baseline.expected == 0.0 {
            return f64::INFINITY;
        }
        self.expected / baseline.expected
    }
}

impl SelectivityEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the estimator from a complete graph snapshot: the edge
    /// histogram from the live edges and the 2-edge path distribution via
    /// Algorithm 5. The mode is [`StatsMode::Cumulative`]; use
    /// [`SelectivityEstimator::with_mode`] to change it.
    pub fn from_graph(graph: &DynamicGraph) -> Self {
        let mut edges = EdgeTypeHistogram::new();
        for e in graph.edges() {
            edges.observe(e.edge_type);
        }
        let lifetime_observed = edges.total();
        Self {
            edges,
            paths: TwoEdgePathCounter::from_graph(graph),
            mode: StatsMode::Cumulative,
            since_decay: 0,
            lifetime_observed,
        }
    }

    /// Sets how history is weighted (see [`StatsMode`]). Switching modes
    /// keeps the counts accumulated so far; decay starts applying from the
    /// next observed edge.
    ///
    /// # Panics
    /// Panics when given [`StatsMode::Decayed`] with a zero interval.
    pub fn with_mode(mut self, mode: StatsMode) -> Self {
        if let StatsMode::Decayed(interval) = mode {
            assert!(interval > 0, "decay interval must be positive");
        }
        self.mode = mode;
        self
    }

    /// The statistics mode in force.
    pub fn mode(&self) -> StatsMode {
        self.mode
    }

    /// Incrementally records one streaming edge (both the 1-edge histogram
    /// and the 2-edge path counts are updated). Under
    /// [`StatsMode::Decayed`] every count is halved once per decay interval
    /// of observed edges.
    ///
    /// # Count provenance
    ///
    /// The estimator does **not** distinguish counts that came from a
    /// snapshot ([`SelectivityEstimator::from_graph`]) from counts observed
    /// incrementally: calling `observe_edge` for edges that were already in
    /// the snapshot double-counts them, and the 2-edge path counters then
    /// also disagree with the true wedge census (the snapshot does not seed
    /// the per-vertex incidence state the incremental update pairs new edges
    /// against). Callers that need exact statistics for the current graph
    /// should use [`SelectivityEstimator::rebuild_from_graph`] (or a fresh
    /// [`SelectivityEstimator::from_graph`]) instead of mixing the two
    /// sources; the decayed mode tolerates the mixture by design, since old
    /// weight — wherever it came from — halves away.
    pub fn observe_edge(&mut self, edge: &EdgeData) {
        self.edges.observe(edge.edge_type);
        self.paths.observe_edge(edge);
        self.lifetime_observed += 1;
        if let StatsMode::Decayed(interval) = self.mode {
            self.since_decay += 1;
            if self.since_decay >= interval {
                self.since_decay = 0;
                self.edges.halve();
                self.paths.halve();
            }
        }
    }

    /// Clears every count (and the decay phase) while keeping the configured
    /// [`StatsMode`]. This is the escape hatch from the mixed-provenance
    /// trap documented on [`SelectivityEstimator::observe_edge`]: reset, then
    /// re-observe from a single source.
    pub fn reset(&mut self) {
        self.edges = EdgeTypeHistogram::new();
        self.paths = TwoEdgePathCounter::new();
        self.since_decay = 0;
        self.lifetime_observed = 0;
    }

    /// Replaces the accumulated counts with exact statistics of the given
    /// graph snapshot (its live — e.g. retained-window — edges), keeping the
    /// configured [`StatsMode`]. The decayed mode uses this to re-anchor the
    /// statistics on the retained graph instead of blending snapshot and
    /// incremental counts of unknown provenance.
    pub fn rebuild_from_graph(&mut self, graph: &DynamicGraph) {
        self.reset();
        let mut edges = EdgeTypeHistogram::new();
        for e in graph.edges() {
            edges.observe(e.edge_type);
        }
        self.lifetime_observed = edges.total();
        self.edges = edges;
        self.paths = TwoEdgePathCounter::from_graph(graph);
    }

    /// Read access to the single-edge histogram.
    pub fn edge_histogram(&self) -> &EdgeTypeHistogram {
        &self.edges
    }

    /// Read access to the 2-edge path distribution.
    pub fn path_counter(&self) -> &TwoEdgePathCounter {
        &self.paths
    }

    /// Number of edges currently *weighted* by the statistics: the
    /// histogram total, which under [`StatsMode::Decayed`] shrinks as old
    /// weight halves away (it never exceeds twice the decay interval). Use
    /// [`SelectivityEstimator::lifetime_edges_observed`] for a monotonic
    /// "how much stream has this estimator seen" count.
    pub fn num_edges_observed(&self) -> u64 {
        self.edges.total()
    }

    /// Monotonic count of edges ever fed to this estimator (snapshot +
    /// incremental), independent of decay. This is the count warm-up gates
    /// like `DriftConfig::min_observations` are checked against — gating on
    /// the decayed total would silently disable such gates whenever the
    /// threshold exceeds twice the decay interval.
    pub fn lifetime_edges_observed(&self) -> u64 {
        self.lifetime_observed
    }

    /// Frequency (raw count) of a primitive.
    pub fn frequency(&self, p: &Primitive) -> u64 {
        match p {
            Primitive::SingleEdge(t) => self.edges.count(*t),
            Primitive::TwoEdgePath(sig) => self.paths.count(sig),
        }
    }

    /// Selectivity of a primitive: its frequency over the total count of
    /// same-size subgraphs (Section 5's definition of Subgraph Selectivity).
    pub fn selectivity(&self, p: &Primitive) -> f64 {
        match p {
            Primitive::SingleEdge(t) => self.edges.selectivity(*t),
            Primitive::TwoEdgePath(sig) => self.paths.selectivity(sig),
        }
    }

    /// Expected Selectivity of a decomposition, given its leaf primitives:
    /// Ŝ(T) = ∏ S(leaf) (Equation 1).
    pub fn expected_selectivity<'a, I>(&self, leaves: I) -> DecompositionSelectivity
    where
        I: IntoIterator<Item = &'a Primitive>,
    {
        let leaf_selectivities: Vec<f64> =
            leaves.into_iter().map(|p| self.selectivity(p)).collect();
        let expected = leaf_selectivities.iter().product();
        DecompositionSelectivity {
            leaf_selectivities,
            expected,
        }
    }

    /// Relative Selectivity ξ(Tk, T1) between two decompositions described by
    /// their leaf primitives (Equation 2). `t1_leaves` is conventionally the
    /// 1-edge decomposition.
    pub fn relative_selectivity<'a, I, J>(&self, tk_leaves: I, t1_leaves: J) -> f64
    where
        I: IntoIterator<Item = &'a Primitive>,
        J: IntoIterator<Item = &'a Primitive>,
    {
        let tk = self.expected_selectivity(tk_leaves);
        let t1 = self.expected_selectivity(t1_leaves);
        tk.relative_to(&t1)
    }

    /// Returns `true` when a primitive was never observed in the sampled
    /// stream. The query-sweep methodology of Section 6.4 filters out queries
    /// containing unseen 2-edge paths because they are "artificially
    /// discriminative".
    pub fn is_unseen(&self, p: &Primitive) -> bool {
        self.frequency(p) == 0
    }

    /// Estimated per-stream-edge processing cost of running a continuous
    /// query against this stream, used by the parallel runtime to balance
    /// queries across worker shards.
    ///
    /// The estimate is `P(dispatch) × |E(query)|`: the probability that an
    /// incoming edge's type occurs in the query (the fraction of the stream
    /// that reaches the query's engine through the edge-type dispatch index)
    /// times the number of query edges (a proxy for the per-invocation leaf
    /// search and join work, which grows with the decomposition size). A
    /// query full of frequent edge types on a large pattern therefore costs
    /// the most; a query watching a rare type is nearly free.
    ///
    /// On an empty estimator every edge type reports selectivity 1, so the
    /// estimate degrades to `(#distinct types) × |E|` — still a usable
    /// relative ordering for shard assignment.
    pub fn estimate_query_cost(&self, query: &sp_query::QueryGraph) -> f64 {
        let mut types: Vec<_> = query.edges().map(|e| e.edge_type).collect();
        types.sort_unstable();
        types.dedup();
        let dispatch_probability: f64 = types
            .iter()
            .map(|&t| self.selectivity(&Primitive::SingleEdge(t)))
            .sum();
        dispatch_probability * query.num_edges() as f64
    }

    /// Expected fraction of a query's leaf searches that shared-leaf
    /// evaluation would eliminate, given the query's canonical leaf shapes
    /// and a residency predicate (`is_resident(sig)` = "some already
    /// registered query subscribes to this shape here").
    ///
    /// Each leaf is weighted by its *search rate* — the probability that an
    /// incoming edge triggers the leaf's anchored search, i.e. the summed
    /// selectivity of the leaf's distinct edge types (capped at 1) — so a
    /// resident leaf over hot types counts for more than one over rare
    /// types. Returns a value in `[0, 1]`; 0 for an empty leaf set. On an
    /// empty estimator every type reports selectivity 1, degrading to the
    /// plain fraction of resident leaves — still a usable ordering.
    pub fn estimate_sharing_benefit<'a, I, F>(&self, leaves: I, is_resident: F) -> f64
    where
        I: IntoIterator<Item = &'a LeafSignature>,
        F: Fn(&LeafSignature) -> bool,
    {
        let mut total = 0.0;
        let mut covered = 0.0;
        for sig in leaves {
            let rate: f64 = sig
                .edge_types()
                .iter()
                .map(|&t| self.selectivity(&Primitive::SingleEdge(t)))
                .sum::<f64>()
                .min(1.0);
            total += rate;
            if is_resident(sig) {
                covered += rate;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            covered / total
        }
    }

    /// Like [`SelectivityEstimator::estimate_sharing_benefit`], additionally
    /// counting the **internal join nodes** of a shared decomposition
    /// prefix. With a shared join stage, the first `shared_join_depth`
    /// leaves of a query's decomposition run once registry-wide — their
    /// anchored searches *and* the hash joins combining them — so they
    /// count as covered regardless of leaf residency, and each internal
    /// node of the shared prefix contributes its own weight to the covered
    /// pool.
    ///
    /// Weights: a leaf's weight is its search rate (as in the leaf-only
    /// estimate); the internal node joining leaves `0..=r` is weighted by
    /// the *rarest* leaf rate among them — the selectivity bound on how
    /// often that join produces (and therefore costs) anything, mirroring
    /// the cost model's "frequency of an internal node is bounded by its
    /// most selective child". Returns a value in `[0, 1]`; with
    /// `shared_join_depth < 2` no join node is shared and the estimate is
    /// the leaf-only fraction over the larger (leaf + join) pool.
    pub fn estimate_sharing_benefit_with_prefix<'a, I, F>(
        &self,
        leaves: I,
        is_resident: F,
        shared_join_depth: usize,
    ) -> f64
    where
        I: IntoIterator<Item = &'a LeafSignature>,
        F: Fn(&LeafSignature) -> bool,
    {
        self.estimate_sharing_benefit_with_prefixes(
            leaves,
            is_resident,
            std::iter::once(shared_join_depth),
        )
    }

    /// The trie-aware form of
    /// [`SelectivityEstimator::estimate_sharing_benefit_with_prefix`]:
    /// `shared_prefix_depths` lists the depth of **every** resident shared
    /// prefix of the query's chain. Nesting prefixes of one chain share
    /// storage in the join trie — a resident `[A,B]` node is the parent of a
    /// resident `[A,B,C]` node, not an independent copy — so the covered
    /// work is the **union** of the per-prefix coverage: each leaf and each
    /// internal join node counts once, at the deepest prefix covering it.
    /// Summing the singular estimate per prefix instead double-counts every
    /// node the shallower prefixes cover.
    pub fn estimate_sharing_benefit_with_prefixes<'a, I, F, D>(
        &self,
        leaves: I,
        is_resident: F,
        shared_prefix_depths: D,
    ) -> f64
    where
        I: IntoIterator<Item = &'a LeafSignature>,
        F: Fn(&LeafSignature) -> bool,
        D: IntoIterator<Item = usize>,
    {
        let shared_join_depth = shared_prefix_depths.into_iter().max().unwrap_or(0);
        let rates: Vec<(f64, bool)> = leaves
            .into_iter()
            .map(|sig| {
                let rate: f64 = sig
                    .edge_types()
                    .iter()
                    .map(|&t| self.selectivity(&Primitive::SingleEdge(t)))
                    .sum::<f64>()
                    .min(1.0);
                (rate, is_resident(sig))
            })
            .collect();
        if rates.is_empty() {
            return 0.0;
        }
        let d = shared_join_depth.min(rates.len());
        let mut total = 0.0;
        let mut covered = 0.0;
        let mut rarest = f64::INFINITY;
        for (r, &(rate, resident)) in rates.iter().enumerate() {
            total += rate;
            if r < d || resident {
                covered += rate;
            }
            rarest = rarest.min(rate);
            if r >= 1 {
                // Internal node joining leaves 0..=r.
                total += rarest;
                if r < d {
                    covered += rarest;
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            covered / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{Direction, EdgeType, Schema, Timestamp};
    use sp_query::QueryGraph;

    /// Data: 90 tcp edges out of one hub, 10 udp edges out of another.
    fn sample_graph() -> DynamicGraph {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let udp = schema.intern_edge_type("udp");
        let mut g = DynamicGraph::new(schema);
        let hub1 = g.add_vertex(vt);
        let hub2 = g.add_vertex(vt);
        for i in 0..90u64 {
            let leaf = g.add_vertex(vt);
            g.add_edge(hub1, leaf, tcp, Timestamp(i));
        }
        for i in 0..10u64 {
            let leaf = g.add_vertex(vt);
            g.add_edge(hub2, leaf, udp, Timestamp(100 + i));
        }
        g
    }

    #[test]
    fn single_edge_selectivity_matches_frequency() {
        let g = sample_graph();
        let est = SelectivityEstimator::from_graph(&g);
        let tcp = g.schema().edge_type("tcp").unwrap();
        let udp = g.schema().edge_type("udp").unwrap();
        assert_eq!(est.frequency(&Primitive::SingleEdge(tcp)), 90);
        assert_eq!(est.frequency(&Primitive::SingleEdge(udp)), 10);
        assert!((est.selectivity(&Primitive::SingleEdge(udp)) - 0.1).abs() < 1e-12);
        assert!(!est.is_unseen(&Primitive::SingleEdge(udp)));
        assert!(est.is_unseen(&Primitive::SingleEdge(EdgeType(99))));
    }

    #[test]
    fn expected_selectivity_is_product_of_leaves() {
        let g = sample_graph();
        let est = SelectivityEstimator::from_graph(&g);
        let tcp = g.schema().edge_type("tcp").unwrap();
        let udp = g.schema().edge_type("udp").unwrap();
        let leaves = [Primitive::SingleEdge(tcp), Primitive::SingleEdge(udp)];
        let d = est.expected_selectivity(leaves.iter());
        assert_eq!(d.leaf_selectivities.len(), 2);
        assert!((d.expected - 0.9 * 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_selectivity_compares_decompositions() {
        let g = sample_graph();
        let est = SelectivityEstimator::from_graph(&g);
        let tcp = g.schema().edge_type("tcp").unwrap();
        let udp = g.schema().edge_type("udp").unwrap();
        // A wedge primitive that exists (tcp out / tcp out at hub1).
        let wedge = Primitive::TwoEdgePath(TwoEdgePathCounter::signature(
            tcp,
            Direction::Outgoing,
            tcp,
            Direction::Outgoing,
        ));
        let single_leaves = [Primitive::SingleEdge(tcp), Primitive::SingleEdge(udp)];
        let path_leaves = [wedge, Primitive::SingleEdge(udp)];
        let xi = est.relative_selectivity(path_leaves.iter(), single_leaves.iter());
        assert!(xi.is_finite());
        assert!(xi > 0.0);
    }

    #[test]
    fn relative_to_handles_zero_baseline() {
        let a = DecompositionSelectivity {
            leaf_selectivities: vec![0.5],
            expected: 0.5,
        };
        let zero = DecompositionSelectivity {
            leaf_selectivities: vec![0.0],
            expected: 0.0,
        };
        assert!(a.relative_to(&zero).is_infinite());
    }

    #[test]
    fn incremental_observation_matches_from_graph() {
        let g = sample_graph();
        let batch = SelectivityEstimator::from_graph(&g);
        let mut inc = SelectivityEstimator::new();
        for e in g.edges() {
            inc.observe_edge(e);
        }
        assert_eq!(inc.num_edges_observed(), batch.num_edges_observed());
        assert_eq!(inc.path_counter().total(), batch.path_counter().total());
    }

    #[test]
    fn empty_estimator_defaults_are_safe() {
        let est = SelectivityEstimator::new();
        let p = Primitive::SingleEdge(EdgeType(0));
        assert_eq!(est.frequency(&p), 0);
        assert_eq!(est.selectivity(&p), 1.0);
        let d = est.expected_selectivity(std::iter::empty());
        assert_eq!(d.expected, 1.0);
        assert!(d.leaf_selectivities.is_empty());
    }

    #[test]
    fn query_cost_orders_frequent_before_rare() {
        let g = sample_graph();
        let est = SelectivityEstimator::from_graph(&g);
        let tcp = g.schema().edge_type("tcp").unwrap();
        let udp = g.schema().edge_type("udp").unwrap();
        let mut q_hot = QueryGraph::new("hot");
        let a = q_hot.add_any_vertex();
        let b = q_hot.add_any_vertex();
        let c = q_hot.add_any_vertex();
        q_hot.add_edge(a, b, tcp);
        q_hot.add_edge(b, c, tcp);
        let mut q_cold = QueryGraph::new("cold");
        let a = q_cold.add_any_vertex();
        let b = q_cold.add_any_vertex();
        let c = q_cold.add_any_vertex();
        q_cold.add_edge(a, b, udp);
        q_cold.add_edge(b, c, udp);
        // 90% of the stream dispatches to the tcp query, 10% to the udp one.
        let hot = est.estimate_query_cost(&q_hot);
        let cold = est.estimate_query_cost(&q_cold);
        assert!(hot > cold, "hot={hot} cold={cold}");
        assert!((hot - 0.9 * 2.0).abs() < 1e-9);
        assert!((cold - 0.1 * 2.0).abs() < 1e-9);
        // A larger pattern on the same types costs more.
        let mut q_big = q_hot.clone();
        let d = q_big.add_any_vertex();
        let e0 = q_big.vertex_ids().next().unwrap();
        q_big.add_edge(d, e0, tcp);
        assert!(est.estimate_query_cost(&q_big) > hot);
        // The empty estimator still yields a finite, positive ordering key.
        let empty = SelectivityEstimator::new();
        assert!(empty.estimate_query_cost(&q_hot) > 0.0);
    }

    #[test]
    fn sharing_benefit_weights_leaves_by_search_rate() {
        use sp_query::{canonicalize_subgraph, QuerySubgraph};
        let g = sample_graph();
        let est = SelectivityEstimator::from_graph(&g);
        let tcp = g.schema().edge_type("tcp").unwrap();
        let udp = g.schema().edge_type("udp").unwrap();
        let sig_for = |t| {
            let mut q = QueryGraph::new("leaf");
            let a = q.add_any_vertex();
            let b = q.add_any_vertex();
            q.add_edge(a, b, t);
            let sub = QuerySubgraph::from_edges(&q, q.edge_ids());
            canonicalize_subgraph(&q, &sub).unwrap().0
        };
        let hot = sig_for(tcp); // selectivity 0.9
        let cold = sig_for(udp); // selectivity 0.1
        let leaves = [hot.clone(), cold.clone()];

        assert_eq!(est.estimate_sharing_benefit(leaves.iter(), |_| false), 0.0);
        assert!((est.estimate_sharing_benefit(leaves.iter(), |_| true) - 1.0).abs() < 1e-12);
        // Only the hot leaf resident: benefit is its share of the search
        // rate, 0.9 / (0.9 + 0.1).
        let b = est.estimate_sharing_benefit(leaves.iter(), |s| *s == hot);
        assert!((b - 0.9).abs() < 1e-12, "benefit = {b}");
        let b = est.estimate_sharing_benefit(leaves.iter(), |s| *s == cold);
        assert!((b - 0.1).abs() < 1e-12, "benefit = {b}");
        // Empty leaf sets report no benefit.
        assert_eq!(est.estimate_sharing_benefit([].iter(), |_| true), 0.0);
    }

    #[test]
    fn prefix_benefit_counts_shared_internal_nodes() {
        use sp_query::{canonicalize_subgraph, QuerySubgraph};
        let g = sample_graph();
        let est = SelectivityEstimator::from_graph(&g);
        let tcp = g.schema().edge_type("tcp").unwrap(); // rate 0.9
        let udp = g.schema().edge_type("udp").unwrap(); // rate 0.1
        let sig_for = |t| {
            let mut q = QueryGraph::new("leaf");
            let a = q.add_any_vertex();
            let b = q.add_any_vertex();
            q.add_edge(a, b, t);
            let sub = QuerySubgraph::from_edges(&q, q.edge_ids());
            canonicalize_subgraph(&q, &sub).unwrap().0
        };
        let hot = sig_for(tcp);
        let cold = sig_for(udp);
        // Chain [cold, hot]: pool = 0.1 + 0.9 (leaves) + 0.1 (the join,
        // bounded by the rarest leaf) = 1.1.
        let leaves = [cold.clone(), hot.clone()];
        // No shared prefix, nothing resident: zero.
        assert_eq!(
            est.estimate_sharing_benefit_with_prefix(leaves.iter(), |_| false, 0),
            0.0
        );
        // A depth-2 shared prefix covers both leaves AND the join: full
        // benefit.
        let full = est.estimate_sharing_benefit_with_prefix(leaves.iter(), |_| false, 2);
        assert!((full - 1.0).abs() < 1e-12, "full = {full}");
        // Leaf-only residency of the hot leaf covers 0.9 of the 1.1 pool —
        // strictly less than prefix sharing, which also takes the join.
        let leaf_only = est.estimate_sharing_benefit_with_prefix(leaves.iter(), |s| *s == hot, 0);
        assert!(
            (leaf_only - 0.9 / 1.1).abs() < 1e-12,
            "leaf_only = {leaf_only}"
        );
        assert!(leaf_only < full);
        // A 3-leaf chain with a depth-2 shared prefix: the second join
        // (0..=2) stays uncovered.
        let leaves3 = [cold.clone(), hot.clone(), cold.clone()];
        // pool = (0.1 + 0.9 + 0.1) + (0.1 + 0.1) = 1.3; covered = 0.1 +
        // 0.9 + 0.1 (first join) = 1.1.
        let partial = est.estimate_sharing_benefit_with_prefix(leaves3.iter(), |_| false, 2);
        assert!((partial - 1.1 / 1.3).abs() < 1e-12, "partial = {partial}");
        // Residency of the remaining suffix leaf adds its rate on top.
        let with_suffix =
            est.estimate_sharing_benefit_with_prefix(leaves3.iter(), |s| *s == cold, 2);
        assert!((with_suffix - 1.2 / 1.3).abs() < 1e-12);
        assert_eq!(
            est.estimate_sharing_benefit_with_prefix([].iter(), |_| true, 2),
            0.0
        );
    }

    #[test]
    fn nested_resident_prefixes_count_each_trie_node_once() {
        use sp_query::{canonicalize_subgraph, QuerySubgraph};
        let g = sample_graph();
        let est = SelectivityEstimator::from_graph(&g);
        let tcp = g.schema().edge_type("tcp").unwrap(); // rate 0.9
        let udp = g.schema().edge_type("udp").unwrap(); // rate 0.1
        let sig_for = |t| {
            let mut q = QueryGraph::new("leaf");
            let a = q.add_any_vertex();
            let b = q.add_any_vertex();
            q.add_edge(a, b, t);
            let sub = QuerySubgraph::from_edges(&q, q.edge_ids());
            canonicalize_subgraph(&q, &sub).unwrap().0
        };
        let hot = sig_for(tcp);
        let cold = sig_for(udp);
        // Chain [cold, hot, cold] with BOTH its depth-2 and depth-3
        // prefixes resident (the trie nests them): pool = 1.3 as above, and
        // the union of coverage is the full chain — benefit 1.0, identical
        // to depth 3 alone. The shallower node adds nothing new.
        let leaves3 = [cold.clone(), hot.clone(), cold.clone()];
        let nested = est.estimate_sharing_benefit_with_prefixes(leaves3.iter(), |_| false, [2, 3]);
        let deep_only = est.estimate_sharing_benefit_with_prefixes(leaves3.iter(), |_| false, [3]);
        assert!((nested - 1.0).abs() < 1e-12, "nested = {nested}");
        assert_eq!(nested, deep_only);
        // The naive per-prefix sum double-counts everything the depth-2
        // node covers (1.1 of the 1.3 pool) — the union stays a fraction.
        let shallow = est.estimate_sharing_benefit_with_prefix(leaves3.iter(), |_| false, 2);
        let deep = est.estimate_sharing_benefit_with_prefix(leaves3.iter(), |_| false, 3);
        assert!(nested < shallow + deep, "union beats the double-count");
        assert!(shallow + deep > 1.0, "the naive sum overflows the pool");
        // Depth order is irrelevant, and the singular form is the
        // one-element special case.
        assert_eq!(
            est.estimate_sharing_benefit_with_prefixes(leaves3.iter(), |_| false, [3, 2]),
            nested
        );
        assert_eq!(
            est.estimate_sharing_benefit_with_prefixes(leaves3.iter(), |_| false, [2]),
            shallow
        );
        assert_eq!(
            est.estimate_sharing_benefit_with_prefixes(leaves3.iter(), |_| false, []),
            est.estimate_sharing_benefit_with_prefix(leaves3.iter(), |_| false, 0)
        );
    }

    #[test]
    fn decayed_mode_forgets_old_traffic() {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let udp = schema.intern_edge_type("udp");
        let mut est = SelectivityEstimator::new().with_mode(StatsMode::Decayed(100));
        assert_eq!(est.mode(), StatsMode::Decayed(100));
        let mut g = DynamicGraph::new(schema);
        let feed = |est: &mut SelectivityEstimator, g: &mut DynamicGraph, t, n: u64| {
            for i in 0..n {
                let a = g.add_vertex(vt);
                let b = g.add_vertex(vt);
                let e = g.add_edge(a, b, t, Timestamp(i));
                est.observe_edge(g.edge(e).unwrap());
            }
        };
        // Phase 1: tcp dominates.
        feed(&mut est, &mut g, tcp, 450);
        feed(&mut est, &mut g, udp, 50);
        assert!(
            est.frequency(&Primitive::SingleEdge(tcp)) > est.frequency(&Primitive::SingleEdge(udp))
        );
        // Phase 2: only udp. After a few half-lives the ranking flips — the
        // cumulative estimator would need 450+ udp edges to ever catch up.
        feed(&mut est, &mut g, udp, 400);
        assert!(
            est.frequency(&Primitive::SingleEdge(udp)) > est.frequency(&Primitive::SingleEdge(tcp)),
            "decay must let the new mix overtake the old: tcp={} udp={}",
            est.frequency(&Primitive::SingleEdge(tcp)),
            est.frequency(&Primitive::SingleEdge(udp)),
        );
    }

    #[test]
    fn cumulative_mode_never_decays() {
        let g = sample_graph();
        let mut est = SelectivityEstimator::new();
        for e in g.edges() {
            est.observe_edge(e);
        }
        assert_eq!(est.num_edges_observed(), 100);
        assert_eq!(est.mode(), StatsMode::Cumulative);
    }

    #[test]
    fn reset_clears_counts_but_keeps_mode() {
        let g = sample_graph();
        let mut est = SelectivityEstimator::new().with_mode(StatsMode::Decayed(7));
        for e in g.edges() {
            est.observe_edge(e);
        }
        assert!(est.num_edges_observed() > 0);
        est.reset();
        assert_eq!(est.num_edges_observed(), 0);
        assert_eq!(est.path_counter().total(), 0);
        assert_eq!(est.mode(), StatsMode::Decayed(7));
    }

    #[test]
    fn rebuild_from_graph_matches_a_fresh_snapshot() {
        let g = sample_graph();
        let mut est = SelectivityEstimator::new();
        // Pollute with arbitrary incremental counts first.
        for e in g.edges().take(20) {
            est.observe_edge(e);
        }
        est.rebuild_from_graph(&g);
        let fresh = SelectivityEstimator::from_graph(&g);
        assert_eq!(est.num_edges_observed(), fresh.num_edges_observed());
        assert_eq!(est.path_counter().total(), fresh.path_counter().total());
    }

    #[test]
    fn snapshot_then_incremental_continuation_is_exact() {
        // The documented contract: from_graph seeds the per-vertex wedge
        // state, so observing only *new* edges afterwards continues the
        // exact census (no mixed-provenance undercount).
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let mut g = DynamicGraph::new(schema);
        let hub = g.add_vertex(vt);
        for i in 0..5u64 {
            let leaf = g.add_vertex(vt);
            g.add_edge(hub, leaf, tcp, Timestamp(i));
        }
        let mut est = SelectivityEstimator::from_graph(&g);
        // Add three more spokes incrementally.
        for i in 5..8u64 {
            let leaf = g.add_vertex(vt);
            let e = g.add_edge(hub, leaf, tcp, Timestamp(i));
            est.observe_edge(g.edge(e).unwrap());
        }
        let batch = SelectivityEstimator::from_graph(&g);
        assert_eq!(est.path_counter().total(), batch.path_counter().total());
        assert_eq!(est.num_edges_observed(), batch.num_edges_observed());
    }

    #[test]
    #[should_panic(expected = "decay interval must be positive")]
    fn zero_decay_interval_is_rejected() {
        let _ = SelectivityEstimator::new().with_mode(StatsMode::Decayed(0));
    }

    #[test]
    fn query_primitives_can_be_scored() {
        // End-to-end: build a query, derive its primitives, score them.
        let g = sample_graph();
        let est = SelectivityEstimator::from_graph(&g);
        let tcp = g.schema().edge_type("tcp").unwrap();
        let udp = g.schema().edge_type("udp").unwrap();
        let mut q = QueryGraph::new("demo");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        let e0 = q.add_edge(a, b, tcp);
        let e1 = q.add_edge(b, c, udp);
        let single0 = q.edge_primitive(e0);
        let wedge = q.wedge_primitive(e0, e1).unwrap();
        assert!(est.selectivity(&single0) > est.selectivity(&wedge));
    }
}
