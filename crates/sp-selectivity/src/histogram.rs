//! Single-edge type histogram.
//!
//! "Computing the selectivity distribution for single-edge subgraphs resolves
//! to computing a histogram of various edge types" (Section 5.1). The
//! histogram is maintained incrementally as edges stream in.

use serde::{Deserialize, Serialize};
use sp_graph::EdgeType;
use std::collections::HashMap;

/// Count of observed edges per edge type.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EdgeTypeHistogram {
    counts: HashMap<EdgeType, u64>,
    total: u64,
}

impl EdgeTypeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one edge of the given type.
    pub fn observe(&mut self, edge_type: EdgeType) {
        *self.counts.entry(edge_type).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` edges of the given type at once.
    pub fn observe_n(&mut self, edge_type: EdgeType, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(edge_type).or_insert(0) += n;
        self.total += n;
    }

    /// Number of edges of the given type observed so far.
    pub fn count(&self, edge_type: EdgeType) -> u64 {
        self.counts.get(&edge_type).copied().unwrap_or(0)
    }

    /// Total number of edges observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct edge types observed.
    pub fn num_types(&self) -> usize {
        self.counts.len()
    }

    /// Selectivity of a single-edge subgraph of the given type: its frequency
    /// divided by the total number of 1-edge subgraphs (= total edges).
    ///
    /// Types never observed get a pseudo-count of 1 ("optimistic one"), so an
    /// unseen type is treated as extremely rare rather than impossible; this
    /// mirrors the paper's treatment of unseen 2-edge paths as "artificially
    /// discriminative" and keeps the metrics finite.
    pub fn selectivity(&self, edge_type: EdgeType) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let c = self.count(edge_type).max(1);
        c as f64 / self.total as f64
    }

    /// Returns `(edge type, count)` pairs sorted by ascending count — the
    /// "selectivity distribution" with the most selective (rarest) types
    /// first, which is the order the decomposition consumes primitives in.
    pub fn ascending(&self) -> Vec<(EdgeType, u64)> {
        let mut v: Vec<(EdgeType, u64)> = self.counts.iter().map(|(&t, &c)| (t, c)).collect();
        v.sort_by_key(|&(t, c)| (c, t.0));
        v
    }

    /// Iterates over the raw counts in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeType, u64)> + '_ {
        self.counts.iter().map(|(&t, &c)| (t, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &EdgeTypeHistogram) {
        for (t, c) in other.iter() {
            self.observe_n(t, c);
        }
    }

    /// Halves every count (integer division), dropping types whose count
    /// reaches zero, and recomputes the total. This is the decay step behind
    /// [`StatsMode::Decayed`](crate::StatsMode): applied once per decay
    /// interval it turns the histogram into an exponentially weighted view of
    /// the stream, so a type that stopped arriving loses half its weight
    /// every interval instead of dominating the selectivity order forever.
    pub fn halve(&mut self) {
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
        self.total = self.counts.values().sum();
    }

    /// The rank order of edge types (rarest first). Used to assess the
    /// stability of the selectivity order across stream snapshots
    /// (Section 6.3: "it is the relative order ... that matters").
    pub fn rank_order(&self) -> Vec<EdgeType> {
        self.ascending().into_iter().map(|(t, _)| t).collect()
    }

    /// Fraction of positions at which two rank orders agree, over the longer
    /// of the two. 1.0 means identical ordering.
    pub fn rank_agreement(a: &[EdgeType], b: &[EdgeType]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let n = a.len().max(b.len());
        let matches = a.iter().zip(b.iter()).filter(|(x, y)| x == y).count();
        matches as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_totals() {
        let mut h = EdgeTypeHistogram::new();
        h.observe(EdgeType(0));
        h.observe(EdgeType(0));
        h.observe(EdgeType(1));
        assert_eq!(h.count(EdgeType(0)), 2);
        assert_eq!(h.count(EdgeType(1)), 1);
        assert_eq!(h.count(EdgeType(9)), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.num_types(), 2);
    }

    #[test]
    fn selectivity_is_relative_frequency() {
        let mut h = EdgeTypeHistogram::new();
        h.observe_n(EdgeType(0), 90);
        h.observe_n(EdgeType(1), 10);
        assert!((h.selectivity(EdgeType(0)) - 0.9).abs() < 1e-12);
        assert!((h.selectivity(EdgeType(1)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn unseen_type_gets_pseudo_count() {
        let mut h = EdgeTypeHistogram::new();
        h.observe_n(EdgeType(0), 100);
        let s = h.selectivity(EdgeType(7));
        assert!(s > 0.0 && s <= 0.01 + 1e-12);
    }

    #[test]
    fn empty_histogram_has_selectivity_one() {
        let h = EdgeTypeHistogram::new();
        assert_eq!(h.selectivity(EdgeType(0)), 1.0);
    }

    #[test]
    fn ascending_order_is_rarest_first() {
        let mut h = EdgeTypeHistogram::new();
        h.observe_n(EdgeType(0), 50);
        h.observe_n(EdgeType(1), 5);
        h.observe_n(EdgeType(2), 500);
        let order: Vec<u32> = h.ascending().iter().map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn observe_n_zero_is_a_noop() {
        let mut h = EdgeTypeHistogram::new();
        h.observe_n(EdgeType(0), 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.num_types(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = EdgeTypeHistogram::new();
        a.observe_n(EdgeType(0), 3);
        let mut b = EdgeTypeHistogram::new();
        b.observe_n(EdgeType(0), 2);
        b.observe_n(EdgeType(1), 1);
        a.merge(&b);
        assert_eq!(a.count(EdgeType(0)), 5);
        assert_eq!(a.count(EdgeType(1)), 1);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn rank_agreement_metric() {
        let a = vec![EdgeType(0), EdgeType(1), EdgeType(2)];
        let b = vec![EdgeType(0), EdgeType(2), EdgeType(1)];
        assert!((EdgeTypeHistogram::rank_agreement(&a, &a) - 1.0).abs() < 1e-12);
        assert!((EdgeTypeHistogram::rank_agreement(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(EdgeTypeHistogram::rank_agreement(&[], &[]), 1.0);
    }

    #[test]
    fn ties_break_deterministically() {
        let mut h = EdgeTypeHistogram::new();
        h.observe_n(EdgeType(3), 5);
        h.observe_n(EdgeType(1), 5);
        let order: Vec<u32> = h.rank_order().iter().map(|t| t.0).collect();
        assert_eq!(order, vec![1, 3]);
    }
}
