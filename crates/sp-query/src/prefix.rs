//! Canonical forms for SJ-Tree *prefixes* — the shared-join analogue of the
//! per-leaf [`LeafSignature`](crate::LeafSignature).
//!
//! A left-deep SJ-Tree over leaves `l0..lk-1` contains, for every depth
//! `d ≥ 2`, an internal node covering leaves `0..d-1` — the *prefix* of the
//! decomposition. Two queries whose decompositions begin with structurally
//! identical leaf sequences, glued together the same way, perform identical
//! leaf searches **and identical join work** for that prefix on every
//! streaming edge. [`PrefixSignature`] is a canonical form under which such
//! prefixes compare (and hash) equal, so a registry can maintain **one**
//! refcounted partial-match table per distinct prefix and fan the join
//! results out to every subscriber.
//!
//! # Construction and invariants
//!
//! The signature is built incrementally, one leaf at a time, and never
//! canonicalizes the growing union graph as a whole (which would be
//! exponential in its size). Each [`ChainStep`] records:
//!
//! * the leaf's own exact canonical form ([`LeafSignature`], ≤
//!   [`MAX_CANONICAL_VERTICES`](crate::MAX_CANONICAL_VERTICES) vertices), and
//! * the *glue*: which of the leaf's canonical vertices coincide with
//!   already-assigned union-canonical vertices, as sorted
//!   `(leaf vertex, union vertex)` pairs. Leaf vertices absent from the glue
//!   are fresh and receive union ids in ascending leaf-canonical order, so
//!   the union numbering is a pure function of the step sequence.
//!
//! Invariants that make sharing sound:
//!
//! 1. **Equality ⇒ isomorphism**: two equal signatures instantiate the same
//!    canonical union graph with the same leaf partition, so the canonical
//!    SJ-Tree built over it performs exactly the join work either owner's
//!    prefix would, and every canonical match rebases onto each owner via
//!    its [`CanonicalMapping`] (`SubgraphMatch::remapped` in `sp-iso`) to
//!    the byte-identical match the owner's own prefix would have produced.
//! 2. **Determinism**: the per-leaf canonicalization and the fresh-vertex
//!    numbering are deterministic given the owner query, so re-registering
//!    the same query always yields the same signature. (Leaf automorphisms
//!    may make *different* queries with isomorphic prefixes canonicalize
//!    differently — that only costs sharing opportunity, never soundness.)
//! 3. **Prefix-closure**: truncating a signature to `d` steps yields exactly
//!    the signature of the depth-`d` prefix, so common prefixes of different
//!    queries are discovered by comparing leading steps
//!    ([`PrefixSignature::common_depth`]).

use crate::canonical::{canonicalize_subgraph, CanonicalMapping};
use crate::query::{QueryEdgeId, QueryGraph, QueryVertexId};
use crate::signature::Primitive;
use crate::subgraph::QuerySubgraph;
use crate::LeafSignature;
use sp_graph::EdgeType;

/// One leaf of a canonical prefix chain: the leaf's canonical form plus how
/// it glues onto the union of the leaves before it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainStep {
    /// Exact canonical form of the leaf.
    pub leaf: LeafSignature,
    /// `(leaf-canonical vertex, union-canonical vertex)` identifications for
    /// the leaf vertices already present in the union, sorted by leaf
    /// vertex. Empty for the first leaf (nothing to glue onto) and for a
    /// disconnected-at-this-depth leaf (none exist in practice: left-deep
    /// decompositions keep prefixes connected).
    pub glue: Vec<(u32, u32)>,
}

/// Canonical signature of an SJ-Tree prefix: the ordered leaf-signature
/// sequence plus the join-cut structure gluing each leaf onto the union of
/// its predecessors. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrefixSignature {
    steps: Vec<ChainStep>,
}

impl PrefixSignature {
    /// Number of leaves the prefix covers.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// The chain steps, in selectivity (leaf-rank) order.
    pub fn steps(&self) -> &[ChainStep] {
        &self.steps
    }

    /// The signature of the depth-`d` prefix of this chain (invariant 3:
    /// this equals the signature [`prefix_chain`] would compute for the
    /// first `d` leaves directly).
    ///
    /// # Panics
    /// Panics when `d` exceeds [`PrefixSignature::depth`].
    pub fn truncated(&self, d: usize) -> PrefixSignature {
        PrefixSignature {
            steps: self.steps[..d].to_vec(),
        }
    }

    /// Length of the longest common leading step sequence of two chains —
    /// the deepest prefix the two decompositions could share a join table
    /// for.
    pub fn common_depth(&self, other: &PrefixSignature) -> usize {
        self.steps
            .iter()
            .zip(&other.steps)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Whether this chain is a (non-strict) leading prefix of `other` — the
    /// containment relation of the shared-join trie: a table for `self` can
    /// feed a table for `other` exactly when this holds. Equivalent to
    /// `self.common_depth(other) == self.depth()`.
    pub fn is_prefix_of(&self, other: &PrefixSignature) -> bool {
        self.depth() <= other.depth() && self.common_depth(other) == self.depth()
    }

    /// The last chain step — the trie-edge key distinguishing this prefix
    /// from its immediate parent `self.truncated(self.depth() - 1)`.
    ///
    /// # Panics
    /// Never: signatures are non-empty by construction ([`prefix_chain`]
    /// rejects empty leaf sets).
    pub fn last_step(&self) -> &ChainStep {
        self.steps.last().expect("signatures are non-empty")
    }

    /// Distinct edge types occurring anywhere in the prefix, ascending. A
    /// streaming edge whose type is not in this set cannot extend any
    /// partial match of the prefix.
    pub fn edge_types(&self) -> Vec<EdgeType> {
        let mut types: Vec<EdgeType> = self
            .steps
            .iter()
            .flat_map(|s| s.leaf.canonical_edges().iter().map(|&(_, _, t)| t))
            .collect();
        types.sort_unstable();
        types.dedup();
        types
    }

    /// Total number of union-canonical vertices.
    pub fn num_vertices(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.leaf.num_vertices() - s.glue.len())
            .sum()
    }

    /// Total number of edges across the prefix leaves.
    pub fn num_edges(&self) -> usize {
        self.steps.iter().map(|s| s.leaf.num_edges()).sum()
    }

    /// Materializes the canonical prefix as a standalone query graph plus
    /// one edge-subset view per leaf (in rank order) — the inputs an
    /// `SjTree::from_leaves` needs to run the shared join stage. Union
    /// vertex `u` becomes `QueryVertexId(u)`; edges are numbered leaf by
    /// leaf, within each leaf in its signature's sorted order (matching
    /// [`CanonicalMapping::edges`] of [`prefix_chain`]).
    pub fn instantiate(&self, name: &str) -> (QueryGraph, Vec<QuerySubgraph>) {
        let mut q = QueryGraph::new(name);
        // First pass: create the union vertices with their types, walking
        // the steps exactly as construction did.
        let mut union_of: Vec<Vec<u32>> = Vec::with_capacity(self.steps.len());
        let mut next_union = 0u32;
        for step in &self.steps {
            let n = step.leaf.num_vertices();
            let mut ids = vec![u32::MAX; n];
            for &(leaf_v, union_v) in &step.glue {
                ids[leaf_v as usize] = union_v;
            }
            for (c, slot) in ids.iter_mut().enumerate() {
                if *slot == u32::MAX {
                    *slot = next_union;
                    next_union += 1;
                    let v = q.add_vertex(step.leaf.vertex_type(c));
                    debug_assert_eq!(v.0 as u32, *slot);
                }
            }
            union_of.push(ids);
        }
        // Second pass: add the edges and build the per-leaf views.
        let mut leaves = Vec::with_capacity(self.steps.len());
        for (step, ids) in self.steps.iter().zip(&union_of) {
            let mut edge_ids = Vec::with_capacity(step.leaf.num_edges());
            for &(s, d, t) in step.leaf.canonical_edges() {
                edge_ids.push(q.add_edge(
                    QueryVertexId(ids[s as usize] as usize),
                    QueryVertexId(ids[d as usize] as usize),
                    t,
                ));
            }
            leaves.push(QuerySubgraph::from_edges(&q, edge_ids));
        }
        (q, leaves)
    }

    /// Renders the chain compactly for logs and reports, e.g.
    /// `edge[tcp] ⋈ edge[esp]`.
    pub fn describe(&self, schema: &sp_graph::Schema) -> String {
        let (q, leaves) = self.instantiate("describe");
        leaves
            .iter()
            .map(|leaf| {
                leaf.primitive(&q)
                    .map(|p: Primitive| p.describe(schema))
                    .unwrap_or_else(|| format!("{}-edge leaf", leaf.num_edges()))
            })
            .collect::<Vec<_>>()
            .join(" ⋈ ")
    }
}

/// Computes the canonical prefix chain of `leaves` (leaf subgraphs of
/// `query` in selectivity order) together with the mapping from
/// union-canonical vertex/edge ids back to the owner's ids. Returns `None`
/// when `leaves` is empty or any leaf fails per-leaf canonicalization
/// (oversized hand-built leaves) — callers fall back to the private,
/// unshared join path.
pub fn prefix_chain<'a, I>(
    query: &QueryGraph,
    leaves: I,
) -> Option<(PrefixSignature, CanonicalMapping)>
where
    I: IntoIterator<Item = &'a QuerySubgraph>,
{
    let mut steps = Vec::new();
    // Union id -> owner vertex, in assignment order.
    let mut owner_vertices: Vec<QueryVertexId> = Vec::new();
    // Owner edge per union edge, in construction (leaf-by-leaf) order.
    let mut owner_edges: Vec<QueryEdgeId> = Vec::new();
    for leaf in leaves {
        let (sig, mapping) = canonicalize_subgraph(query, leaf)?;
        // A leaf vertex either glues onto a union vertex placed by an
        // earlier leaf or is fresh and takes the next union id, in
        // ascending leaf-canonical order. (The probe cannot hit a fresh
        // vertex pushed for *this* leaf: the per-leaf mapping is a
        // bijection, so the leaf's owner vertices are distinct.)
        let mut glue = Vec::new();
        for (c, &owner_v) in mapping.vertices.iter().enumerate() {
            match owner_vertices.iter().position(|&v| v == owner_v) {
                Some(u) => glue.push((c as u32, u as u32)),
                None => owner_vertices.push(owner_v),
            }
        }
        owner_edges.extend(mapping.edges.iter().copied());
        steps.push(ChainStep { leaf: sig, glue });
    }
    if steps.is_empty() {
        return None;
    }
    Some((
        PrefixSignature { steps },
        CanonicalMapping {
            vertices: owner_vertices,
            edges: owner_edges,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{EdgeType, VertexType};

    /// Chain query `v0 -t0-> v1 -t1-> v2 ...` with single-edge leaves in the
    /// given edge order.
    fn chain_query(types: &[u32]) -> (QueryGraph, Vec<QuerySubgraph>) {
        let mut q = QueryGraph::new("chain");
        let mut prev = q.add_any_vertex();
        for &t in types {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, EdgeType(t));
            prev = next;
        }
        let leaves = (0..types.len())
            .map(|i| QuerySubgraph::from_edges(&q, [QueryEdgeId(i)]))
            .collect();
        (q, leaves)
    }

    #[test]
    fn same_chain_different_numbering_is_equal() {
        let (qa, la) = chain_query(&[3, 7]);
        // Same shape but the owner adds padding vertices and reversed edge
        // insertion order inside each leaf's canonical form.
        let mut qb = QueryGraph::new("padded");
        let _pad = qb.add_any_vertex();
        let a = qb.add_any_vertex();
        let b = qb.add_any_vertex();
        let c = qb.add_any_vertex();
        qb.add_edge(b, c, EdgeType(7));
        qb.add_edge(a, b, EdgeType(3));
        let lb = [
            QuerySubgraph::from_edges(&qb, [QueryEdgeId(1)]),
            QuerySubgraph::from_edges(&qb, [QueryEdgeId(0)]),
        ];
        let (sa, ma) = prefix_chain(&qa, la.iter()).unwrap();
        let (sb, mb) = prefix_chain(&qb, lb.iter()).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(sa.depth(), 2);
        assert_eq!(sa.common_depth(&sb), 2);
        // Mappings point into each owner's own numbering.
        assert_eq!(ma.vertices.len(), 3);
        assert_eq!(mb.vertices.len(), 3);
        assert_eq!(ma.edges, vec![QueryEdgeId(0), QueryEdgeId(1)]);
        assert_eq!(mb.edges, vec![QueryEdgeId(1), QueryEdgeId(0)]);
    }

    #[test]
    fn glue_distinguishes_cut_structure() {
        // Both queries have leaves [t0-edge, t1-edge], but in A they share
        // the middle vertex (a path) and in B the t1 edge points back into
        // the t0 edge's source (a fan-out) — different join cuts, so the
        // prefixes must not unify.
        let (qa, la) = chain_query(&[0, 1]);
        let mut qb = QueryGraph::new("fan");
        let a = qb.add_any_vertex();
        let b = qb.add_any_vertex();
        let c = qb.add_any_vertex();
        qb.add_edge(a, b, EdgeType(0));
        qb.add_edge(a, c, EdgeType(1));
        let lb = [
            QuerySubgraph::from_edges(&qb, [QueryEdgeId(0)]),
            QuerySubgraph::from_edges(&qb, [QueryEdgeId(1)]),
        ];
        let (sa, _) = prefix_chain(&qa, la.iter()).unwrap();
        let (sb, _) = prefix_chain(&qb, lb.iter()).unwrap();
        assert_eq!(sa.steps()[0], sb.steps()[0], "first leaves are identical");
        assert_ne!(sa, sb, "glue differs");
        assert_eq!(sa.common_depth(&sb), 1);
    }

    #[test]
    fn truncation_matches_direct_construction() {
        let (q, leaves) = chain_query(&[2, 5, 9]);
        let (full, _) = prefix_chain(&q, leaves.iter()).unwrap();
        let (two, _) = prefix_chain(&q, leaves[..2].iter()).unwrap();
        assert_eq!(full.truncated(2), two);
        assert_eq!(full.truncated(3), full);
        assert_eq!(full.common_depth(&two), 2);
    }

    #[test]
    fn prefix_containment_orders_the_trie() {
        let (q, leaves) = chain_query(&[2, 5, 9]);
        let (full, _) = prefix_chain(&q, leaves.iter()).unwrap();
        let two = full.truncated(2);
        assert!(two.is_prefix_of(&full));
        assert!(!full.is_prefix_of(&two), "containment is antisymmetric");
        assert!(full.is_prefix_of(&full), "containment is reflexive");
        // A chain diverging at the last step is no prefix, even at equal
        // depth prefixes.
        let (q2, l2) = chain_query(&[2, 5, 7]);
        let (other, _) = prefix_chain(&q2, l2.iter()).unwrap();
        assert!(!other.is_prefix_of(&full) && !full.is_prefix_of(&other));
        assert!(two.is_prefix_of(&other), "shared depth-2 prefix");
        // The last step is the trie-edge key: it distinguishes the child
        // from its parent and matches direct construction.
        assert_eq!(full.last_step(), &full.steps()[2]);
        assert_ne!(full.last_step(), other.last_step());
        assert_eq!(two.last_step(), &full.steps()[1]);
    }

    #[test]
    fn instantiate_roundtrips_shape_and_leaf_partition() {
        let (q, leaves) = chain_query(&[2, 5, 9]);
        let (sig, mapping) = prefix_chain(&q, leaves.iter()).unwrap();
        assert_eq!(sig.num_vertices(), 4);
        assert_eq!(sig.num_edges(), 3);
        let (canon, canon_leaves) = sig.instantiate("canon");
        assert_eq!(canon.num_vertices(), 4);
        assert_eq!(canon.num_edges(), 3);
        assert_eq!(canon_leaves.len(), 3);
        // Re-deriving the chain from the instantiation reproduces the
        // signature (fixed point), and the mapping is a bijection.
        let (again, identity) = prefix_chain(&canon, canon_leaves.iter()).unwrap();
        assert_eq!(again, sig);
        assert_eq!(
            identity.vertices,
            (0..4).map(QueryVertexId).collect::<Vec<_>>()
        );
        assert_eq!(mapping.vertices.len(), 4);
        assert_eq!(mapping.edges.len(), 3);
        assert_eq!(
            sig.edge_types(),
            vec![EdgeType(2), EdgeType(5), EdgeType(9)]
        );
    }

    #[test]
    fn vertex_types_flow_into_the_union() {
        let person = VertexType(3);
        let mut q = QueryGraph::new("typed");
        let a = q.add_vertex(person);
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, EdgeType(0));
        q.add_edge(b, c, EdgeType(1));
        let leaves = [
            QuerySubgraph::from_edges(&q, [QueryEdgeId(0)]),
            QuerySubgraph::from_edges(&q, [QueryEdgeId(1)]),
        ];
        let (sig, mapping) = prefix_chain(&q, leaves.iter()).unwrap();
        let (canon, _) = sig.instantiate("canon");
        // Exactly one union vertex carries the person constraint, and the
        // mapping sends it back to `a`.
        let typed: Vec<_> = canon
            .vertices()
            .filter(|(_, v)| v.vertex_type == person)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(typed.len(), 1);
        assert_eq!(mapping.vertices[typed[0].0], a);
        // An untyped variant does not unify with the typed one.
        let (q2, l2) = chain_query(&[0, 1]);
        let (sig2, _) = prefix_chain(&q2, l2.iter()).unwrap();
        assert_ne!(sig, sig2);
    }

    #[test]
    fn oversized_leaves_reject_the_chain() {
        let mut q = QueryGraph::new("big");
        let vs: Vec<_> = (0..9).map(|_| q.add_any_vertex()).collect();
        for i in 0..8 {
            q.add_edge(vs[i], vs[i + 1], EdgeType(0));
        }
        let whole = QuerySubgraph::from_edges(&q, q.edge_ids());
        assert!(prefix_chain(&q, [whole].iter()).is_none());
        assert!(prefix_chain(&q, [].iter()).is_none());
    }

    #[test]
    fn two_edge_path_leaves_chain_with_wedge_glue() {
        // 4-edge chain decomposed into two 2-edge path leaves: the second
        // leaf glues onto the first at exactly one vertex.
        let (q, _) = chain_query(&[1, 1, 1, 1]);
        let leaves = [
            QuerySubgraph::from_edges(&q, [QueryEdgeId(0), QueryEdgeId(1)]),
            QuerySubgraph::from_edges(&q, [QueryEdgeId(2), QueryEdgeId(3)]),
        ];
        let (sig, mapping) = prefix_chain(&q, leaves.iter()).unwrap();
        assert_eq!(sig.depth(), 2);
        assert_eq!(sig.steps()[0].glue.len(), 0);
        assert_eq!(sig.steps()[1].glue.len(), 1);
        assert_eq!(sig.num_vertices(), 5);
        assert_eq!(mapping.vertices.len(), 5);
        let (canon, canon_leaves) = sig.instantiate("canon");
        assert_eq!(canon.num_edges(), 4);
        assert_eq!(canon_leaves[0].num_edges(), 2);
        assert_eq!(canon_leaves[1].num_edges(), 2);
    }
}
