//! The query graph: a small directed, typed multigraph.

use serde::{Deserialize, Serialize};
use sp_graph::{EdgeType, Schema, VertexType};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Index of a vertex within a [`QueryGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryVertexId(pub usize);

/// Index of an edge within a [`QueryGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryEdgeId(pub usize);

impl fmt::Display for QueryVertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for QueryEdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A query vertex: a type constraint (possibly [`VertexType::ANY`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryVertex {
    /// The type a data vertex must have to be bound to this query vertex.
    pub vertex_type: VertexType,
}

/// A query edge: a directed, typed edge between two query vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryEdge {
    /// Id of this edge inside the query graph.
    pub id: QueryEdgeId,
    /// Source query vertex.
    pub src: QueryVertexId,
    /// Destination query vertex.
    pub dst: QueryVertexId,
    /// Required edge type.
    pub edge_type: EdgeType,
}

impl QueryEdge {
    /// Returns the endpoint other than `v`, or `None` if `v` is not an
    /// endpoint.
    pub fn other_endpoint(&self, v: QueryVertexId) -> Option<QueryVertexId> {
        if self.src == v {
            Some(self.dst)
        } else if self.dst == v {
            Some(self.src)
        } else {
            None
        }
    }

    /// Returns `true` if `v` is an endpoint of this edge.
    pub fn touches(&self, v: QueryVertexId) -> bool {
        self.src == v || self.dst == v
    }
}

/// A directed, typed query graph.
///
/// Query graphs are tiny (a handful of edges), so all operations favour
/// clarity over asymptotic cleverness; the hot path of the engine never
/// iterates a query graph per streaming edge beyond its (constant) size.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryGraph {
    name: String,
    vertices: Vec<QueryVertex>,
    edges: Vec<QueryEdge>,
}

impl QueryGraph {
    /// Creates an empty query graph with a human-readable name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            vertices: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The query's name (used in reports and experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the query.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a vertex with the given type constraint and returns its id.
    pub fn add_vertex(&mut self, vertex_type: VertexType) -> QueryVertexId {
        let id = QueryVertexId(self.vertices.len());
        self.vertices.push(QueryVertex { vertex_type });
        id
    }

    /// Adds an untyped (wildcard) vertex.
    pub fn add_any_vertex(&mut self) -> QueryVertexId {
        self.add_vertex(VertexType::ANY)
    }

    /// Adds a directed edge of the given type and returns its id.
    pub fn add_edge(
        &mut self,
        src: QueryVertexId,
        dst: QueryVertexId,
        edge_type: EdgeType,
    ) -> QueryEdgeId {
        assert!(src.0 < self.vertices.len(), "unknown source query vertex");
        assert!(
            dst.0 < self.vertices.len(),
            "unknown destination query vertex"
        );
        let id = QueryEdgeId(self.edges.len());
        self.edges.push(QueryEdge {
            id,
            src,
            dst,
            edge_type,
        });
        id
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns a vertex by id.
    pub fn vertex(&self, id: QueryVertexId) -> &QueryVertex {
        &self.vertices[id.0]
    }

    /// Returns an edge by id.
    pub fn edge(&self, id: QueryEdgeId) -> &QueryEdge {
        &self.edges[id.0]
    }

    /// Iterates over all vertices with their ids.
    pub fn vertices(&self) -> impl Iterator<Item = (QueryVertexId, &QueryVertex)> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (QueryVertexId(i), v))
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &QueryEdge> + '_ {
        self.edges.iter()
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = QueryEdgeId> + '_ {
        (0..self.edges.len()).map(QueryEdgeId)
    }

    /// Iterates over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = QueryVertexId> + '_ {
        (0..self.vertices.len()).map(QueryVertexId)
    }

    /// Iterates over the edges incident to a query vertex (both directions).
    pub fn incident_edges(&self, v: QueryVertexId) -> impl Iterator<Item = &QueryEdge> + '_ {
        self.edges.iter().filter(move |e| e.touches(v))
    }

    /// Degree of a query vertex.
    pub fn degree(&self, v: QueryVertexId) -> usize {
        self.incident_edges(v).count()
    }

    /// Diameter proxy used in the evaluation plots: the number of edges of
    /// the longest shortest path in the undirected sense.
    pub fn undirected_diameter(&self) -> usize {
        let mut best = 0;
        for (start, _) in self.vertices() {
            let mut dist = vec![usize::MAX; self.vertices.len()];
            let mut queue = VecDeque::new();
            dist[start.0] = 0;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                for e in self.incident_edges(v) {
                    let n = e.other_endpoint(v).expect("incident edge touches v");
                    if dist[n.0] == usize::MAX {
                        dist[n.0] = dist[v.0] + 1;
                        queue.push_back(n);
                    }
                }
            }
            for &d in &dist {
                if d != usize::MAX {
                    best = best.max(d);
                }
            }
        }
        best
    }

    /// Returns `true` when the query graph is connected (ignoring edge
    /// direction). The SJ-Tree decomposition requires connected queries.
    pub fn is_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(QueryVertexId(0));
        queue.push_back(QueryVertexId(0));
        while let Some(v) = queue.pop_front() {
            for e in self.incident_edges(v) {
                let n = e.other_endpoint(v).expect("incident edge touches v");
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        seen.len() == self.vertices.len()
    }

    /// Renders the query as a list of `src -[type]-> dst` triples using the
    /// schema for readable names.
    pub fn describe(&self, schema: &Schema) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "query \"{}\" ({} edges):\n",
            self.name,
            self.edges.len()
        ));
        for e in &self.edges {
            let st = self.vertices[e.src.0].vertex_type;
            let dt = self.vertices[e.dst.0].vertex_type;
            out.push_str(&format!(
                "  {}:{} -[{}]-> {}:{}\n",
                e.src,
                schema.vertex_type_name(st),
                schema.edge_type_name(e.edge_type),
                e.dst,
                schema.vertex_type_name(dt),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> QueryGraph {
        // v0 -a-> v1 -b-> v2 -c-> v3
        let mut q = QueryGraph::new("path3");
        let v: Vec<_> = (0..4).map(|_| q.add_any_vertex()).collect();
        q.add_edge(v[0], v[1], EdgeType(0));
        q.add_edge(v[1], v[2], EdgeType(1));
        q.add_edge(v[2], v[3], EdgeType(2));
        q
    }

    #[test]
    fn building_a_path_query() {
        let q = path3();
        assert_eq!(q.num_vertices(), 4);
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.edge(QueryEdgeId(1)).edge_type, EdgeType(1));
        assert!(q.is_connected());
        assert_eq!(q.undirected_diameter(), 3);
    }

    #[test]
    fn incident_edges_and_degree() {
        let q = path3();
        assert_eq!(q.degree(QueryVertexId(0)), 1);
        assert_eq!(q.degree(QueryVertexId(1)), 2);
        let incident: Vec<_> = q.incident_edges(QueryVertexId(1)).map(|e| e.id.0).collect();
        assert_eq!(incident, vec![0, 1]);
    }

    #[test]
    fn disconnected_query_is_detected() {
        let mut q = QueryGraph::new("disconnected");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let _c = q.add_any_vertex();
        q.add_edge(a, b, EdgeType(0));
        assert!(!q.is_connected());
    }

    #[test]
    fn empty_query_is_connected_by_convention() {
        let q = QueryGraph::new("empty");
        assert!(q.is_connected());
        assert_eq!(q.undirected_diameter(), 0);
    }

    #[test]
    fn other_endpoint_on_query_edges() {
        let q = path3();
        let e = q.edge(QueryEdgeId(0));
        assert_eq!(e.other_endpoint(QueryVertexId(0)), Some(QueryVertexId(1)));
        assert_eq!(e.other_endpoint(QueryVertexId(1)), Some(QueryVertexId(0)));
        assert_eq!(e.other_endpoint(QueryVertexId(3)), None);
    }

    #[test]
    fn describe_uses_schema_names() {
        let mut schema = Schema::new();
        let tcp = schema.intern_edge_type("tcp");
        let ip = schema.intern_vertex_type("ip");
        let mut q = QueryGraph::new("demo");
        let a = q.add_vertex(ip);
        let b = q.add_any_vertex();
        q.add_edge(a, b, tcp);
        let text = q.describe(&schema);
        assert!(text.contains("tcp"));
        assert!(text.contains("ip"));
        assert!(text.contains('*'));
    }

    #[test]
    fn serde_roundtrip() {
        let q = path3();
        let json = serde_json::to_string(&q).unwrap();
        let back: QueryGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_edges(), q.num_edges());
        assert_eq!(back.name(), "path3");
    }

    #[test]
    #[should_panic(expected = "unknown source query vertex")]
    fn adding_edge_with_unknown_vertex_panics() {
        let mut q = QueryGraph::new("bad");
        let v = q.add_any_vertex();
        q.add_edge(QueryVertexId(5), v, EdgeType(0));
    }
}
