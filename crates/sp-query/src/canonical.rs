//! Canonical forms for small query subgraphs (SJ-Tree leaves).
//!
//! With a registry of many concurrent queries, distinct queries routinely
//! decompose into *structurally identical* leaf subpatterns — the same typed
//! edge, the same wedge — that differ only in how the owning query numbers
//! its vertices and edges. [`LeafSignature`] is a canonical form under which
//! such leaves compare (and hash) equal: vertex numbering is normalized to
//! `0..n` by exhaustive search over vertex bijections (leaves are tiny — at
//! most [`MAX_CANONICAL_VERTICES`] vertices — so this is exact, not
//! heuristic), and vertex types, edge types and edge direction are all part
//! of the encoding.
//!
//! [`canonicalize_subgraph`] also returns the [`CanonicalMapping`] from the
//! canonical numbering back to the original query's ids, so a match found
//! against the canonical leaf can be *rebased* onto any subscriber's
//! numbering (`SubgraphMatch::remapped` in `sp-iso`). This is the foundation
//! of shared-leaf evaluation: run one anchored search per distinct canonical
//! leaf per streaming edge, then fan the results out to every query that
//! subscribes to that leaf shape.

use crate::query::{QueryEdgeId, QueryGraph, QueryVertexId};
use crate::subgraph::QuerySubgraph;
use serde::{Deserialize, Serialize};
use sp_graph::{EdgeType, VertexType};

/// Largest leaf (in vertices) the exact canonicalization accepts. The
/// decomposition policies produce leaves of at most 3 vertices; the cap only
/// matters for hand-built trees, whose engines simply fall back to private
/// (unshared) leaf search.
pub const MAX_CANONICAL_VERTICES: usize = 7;

/// A canonical edge: `(source, destination, type)` in canonical vertex
/// numbering. Direction is preserved — `0 -t-> 1` and `1 -t-> 0` are
/// different leaves.
pub type CanonicalEdge = (u32, u32, EdgeType);

/// Canonical form of a small query subgraph: two leaves from different
/// queries produce equal signatures **iff** they are isomorphic as typed,
/// directed multigraphs (including vertex-type constraints).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LeafSignature {
    /// Vertex type of each canonical vertex, indexed `0..n`.
    vertex_types: Vec<VertexType>,
    /// Edges in canonical numbering, sorted lexicographically.
    edges: Vec<CanonicalEdge>,
}

/// The bijection from the canonical numbering back to one query's ids,
/// stored per subscriber so shared search results can be rebased.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalMapping {
    /// `vertices[c]` is the original query vertex the canonical vertex `c`
    /// stands for.
    pub vertices: Vec<QueryVertexId>,
    /// `edges[c]` is the original query edge the canonical edge `c` (in the
    /// signature's sorted order) stands for.
    pub edges: Vec<QueryEdgeId>,
}

impl LeafSignature {
    /// Number of canonical vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_types.len()
    }

    /// The vertex-type constraint of canonical vertex `c`.
    pub fn vertex_type(&self, c: usize) -> VertexType {
        self.vertex_types[c]
    }

    /// The canonical edges, sorted lexicographically — the order the
    /// signature (and every [`CanonicalMapping::edges`]) numbers them in.
    pub fn canonical_edges(&self) -> &[CanonicalEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The distinct edge types occurring in the leaf, ascending. A streaming
    /// edge whose type is not in this set can never produce a match of the
    /// leaf, so the shared search can skip it outright.
    pub fn edge_types(&self) -> Vec<EdgeType> {
        let mut types: Vec<EdgeType> = self.edges.iter().map(|&(_, _, t)| t).collect();
        types.sort_unstable();
        types.dedup();
        types
    }

    /// Materializes the canonical leaf as a standalone query graph (plus the
    /// subgraph view covering all of it), suitable for the anchored matchers.
    /// Canonical vertex `c` becomes `QueryVertexId(c)` and the `i`-th
    /// canonical edge becomes `QueryEdgeId(i)`.
    pub fn instantiate(&self, name: &str) -> (QueryGraph, QuerySubgraph) {
        let mut q = QueryGraph::new(name);
        for &vt in &self.vertex_types {
            q.add_vertex(vt);
        }
        for &(src, dst, t) in &self.edges {
            q.add_edge(QueryVertexId(src as usize), QueryVertexId(dst as usize), t);
        }
        let sub = QuerySubgraph::from_edges(&q, q.edge_ids());
        (q, sub)
    }
}

/// Computes the canonical signature of a subgraph of `query` together with
/// the mapping from canonical ids back to the query's ids. Returns `None`
/// when the subgraph is empty or larger than [`MAX_CANONICAL_VERTICES`]
/// vertices (callers fall back to private, unshared search).
pub fn canonicalize_subgraph(
    query: &QueryGraph,
    subgraph: &QuerySubgraph,
) -> Option<(LeafSignature, CanonicalMapping)> {
    let verts: Vec<QueryVertexId> = subgraph.vertices().collect();
    let edge_ids: Vec<QueryEdgeId> = subgraph.edges().collect();
    let n = verts.len();
    if n == 0 || n > MAX_CANONICAL_VERTICES {
        return None;
    }

    // `perm[i]` is the canonical index assigned to `verts[i]`. Enumerate all
    // bijections and keep the lexicographically smallest encoding; strict
    // improvement makes the winning permutation deterministic.
    let mut best: Option<(Vec<VertexType>, Vec<CanonicalEdge>, Vec<usize>)> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        let mut vertex_types = vec![VertexType::ANY; n];
        for (i, &v) in verts.iter().enumerate() {
            vertex_types[perm[i]] = query.vertex(v).vertex_type;
        }
        let canon_of = |v: QueryVertexId| -> u32 {
            let i = verts
                .binary_search(&v)
                .expect("endpoint is in the subgraph");
            perm[i] as u32
        };
        let mut edges: Vec<CanonicalEdge> = edge_ids
            .iter()
            .map(|&e| {
                let edge = query.edge(e);
                (canon_of(edge.src), canon_of(edge.dst), edge.edge_type)
            })
            .collect();
        edges.sort_unstable();
        let better = match &best {
            None => true,
            Some((bt, be, _)) => (&vertex_types, &edges) < (bt, be),
        };
        if better {
            best = Some((vertex_types, edges, perm.clone()));
        }
        if !next_permutation(&mut perm) {
            break;
        }
    }

    let (vertex_types, edges, perm) = best.expect("at least one permutation");

    // Invert the winning permutation: canonical index -> original vertex.
    let mut vertices = vec![QueryVertexId(usize::MAX); n];
    for (i, &v) in verts.iter().enumerate() {
        vertices[perm[i]] = v;
    }

    // Assign each canonical edge an original edge id. Identical triples
    // (parallel query edges inside one leaf) are interchangeable for match
    // enumeration; assign them in ascending original-id order so the mapping
    // is deterministic.
    let canon_of = |v: QueryVertexId| -> u32 {
        let i = verts
            .binary_search(&v)
            .expect("endpoint is in the subgraph");
        perm[i] as u32
    };
    let mut pool: Vec<(CanonicalEdge, QueryEdgeId)> = edge_ids
        .iter()
        .map(|&e| {
            let edge = query.edge(e);
            ((canon_of(edge.src), canon_of(edge.dst), edge.edge_type), e)
        })
        .collect();
    pool.sort_unstable();
    let edge_map: Vec<QueryEdgeId> = pool.iter().map(|&(_, e)| e).collect();
    debug_assert!(pool
        .iter()
        .map(|&(triple, _)| triple)
        .eq(edges.iter().copied()));

    Some((
        LeafSignature {
            vertex_types,
            edges,
        },
        CanonicalMapping {
            vertices,
            edges: edge_map,
        },
    ))
}

/// In-place lexicographic next permutation; returns `false` after the last
/// one (leaving the slice sorted descending).
fn next_permutation(p: &mut [usize]) -> bool {
    if p.len() < 2 {
        return false;
    }
    let mut i = p.len() - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = p.len() - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::EdgeType;

    fn sig_of(query: &QueryGraph, edges: &[usize]) -> (LeafSignature, CanonicalMapping) {
        let sub = QuerySubgraph::from_edges(query, edges.iter().map(|&e| QueryEdgeId(e)));
        canonicalize_subgraph(query, &sub).expect("small leaf canonicalizes")
    }

    #[test]
    fn next_permutation_enumerates_all() {
        let mut p = vec![0, 1, 2];
        let mut count = 1;
        while next_permutation(&mut p) {
            count += 1;
        }
        assert_eq!(count, 6);
    }

    #[test]
    fn same_shape_different_numbering_is_equal() {
        // Query A: v0 -t-> v1 (edge 0). Query B has extra vertices first, so
        // its t-edge lives between v2 and v1.
        let t = EdgeType(7);
        let mut qa = QueryGraph::new("a");
        let a0 = qa.add_any_vertex();
        let a1 = qa.add_any_vertex();
        qa.add_edge(a0, a1, t);

        let mut qb = QueryGraph::new("b");
        let _pad = qb.add_any_vertex();
        let b1 = qb.add_any_vertex();
        let b2 = qb.add_any_vertex();
        qb.add_edge(b1, b2, EdgeType(9)); // unrelated edge 0
        qb.add_edge(b2, b1, t); // the shared-shape edge 1

        let (sa, _) = sig_of(&qa, &[0]);
        let (sb, mb) = sig_of(&qb, &[1]);
        assert_eq!(sa, sb);
        // The mapping points back into query B's numbering.
        assert_eq!(mb.vertices.len(), 2);
        assert_eq!(mb.edges, vec![QueryEdgeId(1)]);
        assert!(mb.vertices.contains(&b1) && mb.vertices.contains(&b2));
    }

    #[test]
    fn direction_distinguishes_wedges() {
        let t = EdgeType(1);
        // out-out wedge: b <- a -> c ... encoded as a->b, a->c.
        let mut q1 = QueryGraph::new("out-out");
        let a = q1.add_any_vertex();
        let b = q1.add_any_vertex();
        let c = q1.add_any_vertex();
        q1.add_edge(a, b, t);
        q1.add_edge(a, c, t);
        // in-in wedge: a -> b <- c.
        let mut q2 = QueryGraph::new("in-in");
        let a = q2.add_any_vertex();
        let b = q2.add_any_vertex();
        let c = q2.add_any_vertex();
        q2.add_edge(a, b, t);
        q2.add_edge(c, b, t);
        assert_ne!(sig_of(&q1, &[0, 1]).0, sig_of(&q2, &[0, 1]).0);
    }

    #[test]
    fn vertex_types_distinguish_leaves() {
        let t = EdgeType(1);
        let person = VertexType(3);
        let mut q1 = QueryGraph::new("typed");
        let a = q1.add_vertex(person);
        let b = q1.add_any_vertex();
        q1.add_edge(a, b, t);
        let mut q2 = QueryGraph::new("untyped");
        let a = q2.add_any_vertex();
        let b = q2.add_any_vertex();
        q2.add_edge(a, b, t);
        assert_ne!(sig_of(&q1, &[0]).0, sig_of(&q2, &[0]).0);
    }

    #[test]
    fn path_wedges_are_equal_regardless_of_edge_order() {
        // a -s-> b -t-> c  vs  x -t-> y built after z -s-> x ... the wedge
        // s-then-t through the middle vertex must canonicalize identically.
        let s = EdgeType(0);
        let t = EdgeType(1);
        let mut q1 = QueryGraph::new("st");
        let a = q1.add_any_vertex();
        let b = q1.add_any_vertex();
        let c = q1.add_any_vertex();
        q1.add_edge(a, b, s);
        q1.add_edge(b, c, t);
        let mut q2 = QueryGraph::new("ts");
        let x = q2.add_any_vertex();
        let y = q2.add_any_vertex();
        let z = q2.add_any_vertex();
        q2.add_edge(x, y, t); // edge 0: the t leg
        q2.add_edge(z, x, s); // edge 1: the s leg
        assert_eq!(sig_of(&q1, &[0, 1]).0, sig_of(&q2, &[0, 1]).0);
    }

    #[test]
    fn instantiate_roundtrips_the_shape() {
        let s = EdgeType(0);
        let t = EdgeType(1);
        let mut q = QueryGraph::new("st");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, s);
        q.add_edge(b, c, t);
        let (sig, _) = sig_of(&q, &[0, 1]);
        let (canon_q, canon_sub) = sig.instantiate("canon");
        assert_eq!(canon_q.num_vertices(), 3);
        assert_eq!(canon_q.num_edges(), 2);
        assert_eq!(canon_sub.num_edges(), 2);
        // Canonicalizing the instantiation reproduces the signature.
        let again = canonicalize_subgraph(&canon_q, &canon_sub).unwrap().0;
        assert_eq!(again, sig);
        assert_eq!(sig.edge_types(), vec![s, t]);
        assert_eq!(sig.num_vertices(), 3);
        assert_eq!(sig.num_edges(), 2);
    }

    #[test]
    fn parallel_edges_canonicalize_deterministically() {
        let t = EdgeType(2);
        let mut q = QueryGraph::new("parallel");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        q.add_edge(a, b, t);
        q.add_edge(a, b, t);
        let (sig, map) = sig_of(&q, &[0, 1]);
        assert_eq!(sig.num_edges(), 2);
        // Identical triples map to ascending original ids.
        assert_eq!(map.edges, vec![QueryEdgeId(0), QueryEdgeId(1)]);
    }

    #[test]
    fn oversized_and_empty_leaves_are_rejected() {
        let t = EdgeType(0);
        let mut q = QueryGraph::new("big");
        let vs: Vec<_> = (0..9).map(|_| q.add_any_vertex()).collect();
        for i in 0..8 {
            q.add_edge(vs[i], vs[i + 1], t);
        }
        let big = QuerySubgraph::from_edges(&q, q.edge_ids());
        assert!(canonicalize_subgraph(&q, &big).is_none());
        assert!(canonicalize_subgraph(&q, &QuerySubgraph::empty()).is_none());
    }
}
