//! Search-primitive signatures.
//!
//! The decomposition algorithm (Section 5.1) restricts the SJ-Tree leaves to
//! two families of cheap-to-search, cheap-to-count subgraphs:
//!
//! * **single edges** — identified by their edge type (the output of the
//!   schema's `Map()` function), optionally refined by endpoint vertex types
//!   ([`EdgeSignature`], used by the dataset generators as "valid triples");
//! * **2-edge paths** — two edges sharing a center vertex, identified by the
//!   unordered pair of (edge type, direction-at-center) of the two edges
//!   ([`TwoEdgePathSignature`]), exactly the keys counted by Algorithm 5's
//!   `COUNT-2-EDGE-PATHS`.
//!
//! These signatures double as hash keys in the selectivity histograms of
//! `sp-selectivity`.

use crate::query::{QueryEdgeId, QueryGraph, QueryVertexId};
use serde::{Deserialize, Serialize};
use sp_graph::{Direction, EdgeType, Schema, VertexType};
use std::fmt;

/// An edge type together with its direction relative to a reference vertex
/// (the shared center vertex for 2-edge paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DirectedEdgeType {
    /// The edge type.
    pub edge_type: EdgeType,
    /// `Outgoing` when the reference vertex is the source of the edge.
    pub direction: Direction,
}

impl DirectedEdgeType {
    /// Convenience constructor.
    pub fn new(edge_type: EdgeType, direction: Direction) -> Self {
        Self {
            edge_type,
            direction,
        }
    }

    /// Outgoing edge of the given type.
    pub fn outgoing(edge_type: EdgeType) -> Self {
        Self::new(edge_type, Direction::Outgoing)
    }

    /// Incoming edge of the given type.
    pub fn incoming(edge_type: EdgeType) -> Self {
        Self::new(edge_type, Direction::Incoming)
    }
}

// `Direction` does not implement Ord; order Outgoing < Incoming explicitly so
// DirectedEdgeType can be normalized deterministically.
impl DirectedEdgeType {
    fn order_key(&self) -> (u32, u8) {
        let d = match self.direction {
            Direction::Outgoing => 0,
            Direction::Incoming => 1,
        };
        (self.edge_type.0, d)
    }
}

/// A "valid triple" `(source vertex type, edge type, destination vertex
/// type)`. This is how the LSBench schema describes which edges may exist and
/// how labeled single-edge query primitives are described.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeSignature {
    /// Type required of the source vertex ([`VertexType::ANY`] if unconstrained).
    pub src_type: VertexType,
    /// The edge type.
    pub edge_type: EdgeType,
    /// Type required of the destination vertex.
    pub dst_type: VertexType,
}

impl EdgeSignature {
    /// Creates a signature with unconstrained endpoints.
    pub fn untyped(edge_type: EdgeType) -> Self {
        Self {
            src_type: VertexType::ANY,
            edge_type,
            dst_type: VertexType::ANY,
        }
    }

    /// Creates a fully specified signature.
    pub fn new(src_type: VertexType, edge_type: EdgeType, dst_type: VertexType) -> Self {
        Self {
            src_type,
            edge_type,
            dst_type,
        }
    }

    /// Renders the signature with readable names.
    pub fn describe(&self, schema: &Schema) -> String {
        format!(
            "({} -[{}]-> {})",
            schema.vertex_type_name(self.src_type),
            schema.edge_type_name(self.edge_type),
            schema.vertex_type_name(self.dst_type)
        )
    }
}

/// Signature of a 2-edge path (wedge): two edges sharing a center vertex,
/// identified by the unordered pair of their (edge type, direction at the
/// center). The pair is normalized so that equal wedges hash equally
/// regardless of enumeration order — this mirrors the `LEXICALLY-GREATER`
/// constraint in Algorithm 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TwoEdgePathSignature {
    first: DirectedEdgeType,
    second: DirectedEdgeType,
}

impl TwoEdgePathSignature {
    /// Builds a normalized signature from the two incident directed edge
    /// types (order of arguments does not matter).
    pub fn new(a: DirectedEdgeType, b: DirectedEdgeType) -> Self {
        if a.order_key() <= b.order_key() {
            Self {
                first: a,
                second: b,
            }
        } else {
            Self {
                first: b,
                second: a,
            }
        }
    }

    /// The lexically smaller component.
    pub fn first(&self) -> DirectedEdgeType {
        self.first
    }

    /// The lexically larger component.
    pub fn second(&self) -> DirectedEdgeType {
        self.second
    }

    /// `true` when both components have the same edge type and direction
    /// (the `n*(n-1)/2` case of Algorithm 5).
    pub fn is_homogeneous(&self) -> bool {
        self.first == self.second
    }

    /// Renders the signature with readable names, center vertex in the middle.
    pub fn describe(&self, schema: &Schema) -> String {
        let part = |d: DirectedEdgeType| {
            let name = schema.edge_type_name(d.edge_type);
            match d.direction {
                Direction::Outgoing => format!("-[{name}]->"),
                Direction::Incoming => format!("<-[{name}]-"),
            }
        };
        format!("(* {} c {} *)", part(self.first), part(self.second))
    }
}

/// A search primitive: what an SJ-Tree leaf searches for on every incoming
/// edge, and what the selectivity estimator can put a number on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Primitive {
    /// A single typed edge.
    SingleEdge(EdgeType),
    /// A 2-edge path (wedge).
    TwoEdgePath(TwoEdgePathSignature),
}

impl Primitive {
    /// Number of edges in the primitive.
    pub fn num_edges(&self) -> usize {
        match self {
            Primitive::SingleEdge(_) => 1,
            Primitive::TwoEdgePath(_) => 2,
        }
    }

    /// Renders the primitive with readable names.
    pub fn describe(&self, schema: &Schema) -> String {
        match self {
            Primitive::SingleEdge(t) => format!("edge[{}]", schema.edge_type_name(*t)),
            Primitive::TwoEdgePath(sig) => format!("path{}", sig.describe(schema)),
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Primitive::SingleEdge(t) => write!(f, "edge[{}]", t.0),
            Primitive::TwoEdgePath(sig) => write!(
                f,
                "path[{}/{:?},{}/{:?}]",
                sig.first.edge_type.0,
                sig.first.direction,
                sig.second.edge_type.0,
                sig.second.direction
            ),
        }
    }
}

/// Computes the [`TwoEdgePathSignature`] of two query edges if they share a
/// vertex, along with the shared (center) vertex. Returns `None` when the
/// edges do not form a wedge.
pub(crate) fn wedge_signature(
    query: &QueryGraph,
    a: QueryEdgeId,
    b: QueryEdgeId,
) -> Option<(TwoEdgePathSignature, QueryVertexId)> {
    let ea = query.edge(a);
    let eb = query.edge(b);
    if a == b {
        return None;
    }
    // Find a shared vertex; prefer any.
    let shared = [ea.src, ea.dst].into_iter().find(|&v| eb.touches(v))?;
    let dir = |e: &crate::query::QueryEdge| {
        if e.src == shared {
            Direction::Outgoing
        } else {
            Direction::Incoming
        }
    };
    let sig = TwoEdgePathSignature::new(
        DirectedEdgeType::new(ea.edge_type, dir(ea)),
        DirectedEdgeType::new(eb.edge_type, dir(eb)),
    );
    Some((sig, shared))
}

impl QueryGraph {
    /// Signature (histogram key) of a single query edge.
    pub fn edge_primitive(&self, e: QueryEdgeId) -> Primitive {
        Primitive::SingleEdge(self.edge(e).edge_type)
    }

    /// Signature of the wedge formed by two query edges, if they share a
    /// vertex.
    pub fn wedge_primitive(&self, a: QueryEdgeId, b: QueryEdgeId) -> Option<Primitive> {
        wedge_signature(self, a, b).map(|(sig, _)| Primitive::TwoEdgePath(sig))
    }

    /// The center vertex of the wedge formed by two query edges, if any.
    pub fn wedge_center(&self, a: QueryEdgeId, b: QueryEdgeId) -> Option<QueryVertexId> {
        wedge_signature(self, a, b).map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryGraph;

    #[test]
    fn wedge_signature_is_order_independent() {
        let a = DirectedEdgeType::outgoing(EdgeType(3));
        let b = DirectedEdgeType::incoming(EdgeType(1));
        assert_eq!(
            TwoEdgePathSignature::new(a, b),
            TwoEdgePathSignature::new(b, a)
        );
    }

    #[test]
    fn homogeneous_wedge_detection() {
        let a = DirectedEdgeType::outgoing(EdgeType(2));
        let sig = TwoEdgePathSignature::new(a, a);
        assert!(sig.is_homogeneous());
        let b = DirectedEdgeType::incoming(EdgeType(2));
        assert!(!TwoEdgePathSignature::new(a, b).is_homogeneous());
    }

    #[test]
    fn direction_matters_in_wedge_signature() {
        let out_out = TwoEdgePathSignature::new(
            DirectedEdgeType::outgoing(EdgeType(0)),
            DirectedEdgeType::outgoing(EdgeType(1)),
        );
        let out_in = TwoEdgePathSignature::new(
            DirectedEdgeType::outgoing(EdgeType(0)),
            DirectedEdgeType::incoming(EdgeType(1)),
        );
        assert_ne!(out_out, out_in);
    }

    #[test]
    fn query_wedge_primitive_detects_shared_vertex() {
        let mut q = QueryGraph::new("wedge");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        let d = q.add_any_vertex();
        let e0 = q.add_edge(a, b, EdgeType(0));
        let e1 = q.add_edge(b, c, EdgeType(1));
        let e2 = q.add_edge(c, d, EdgeType(2));
        assert!(q.wedge_primitive(e0, e1).is_some());
        assert_eq!(q.wedge_center(e0, e1), Some(b));
        assert!(q.wedge_primitive(e0, e2).is_none());
        assert!(q.wedge_primitive(e0, e0).is_none());
    }

    #[test]
    fn query_wedge_signature_center_directions() {
        // a -> b <- c : at center b both edges are Incoming.
        let mut q = QueryGraph::new("in-in");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        let e0 = q.add_edge(a, b, EdgeType(0));
        let e1 = q.add_edge(c, b, EdgeType(0));
        let prim = q.wedge_primitive(e0, e1).unwrap();
        match prim {
            Primitive::TwoEdgePath(sig) => {
                assert_eq!(sig.first().direction, Direction::Incoming);
                assert_eq!(sig.second().direction, Direction::Incoming);
            }
            _ => panic!("expected a wedge primitive"),
        }
    }

    #[test]
    fn primitive_edge_count() {
        assert_eq!(Primitive::SingleEdge(EdgeType(0)).num_edges(), 1);
        let sig = TwoEdgePathSignature::new(
            DirectedEdgeType::outgoing(EdgeType(0)),
            DirectedEdgeType::outgoing(EdgeType(0)),
        );
        assert_eq!(Primitive::TwoEdgePath(sig).num_edges(), 2);
    }

    #[test]
    fn describe_renders_names() {
        let mut schema = Schema::new();
        let tcp = schema.intern_edge_type("tcp");
        let udp = schema.intern_edge_type("udp");
        let sig = TwoEdgePathSignature::new(
            DirectedEdgeType::outgoing(tcp),
            DirectedEdgeType::incoming(udp),
        );
        let text = Primitive::TwoEdgePath(sig).describe(&schema);
        assert!(text.contains("tcp"));
        assert!(text.contains("udp"));
        let single = Primitive::SingleEdge(tcp).describe(&schema);
        assert_eq!(single, "edge[tcp]");
        let es = EdgeSignature::untyped(tcp).describe(&schema);
        assert!(es.contains("tcp"));
        assert!(es.contains('*'));
    }

    #[test]
    fn display_impl_is_stable() {
        let p = Primitive::SingleEdge(EdgeType(4));
        assert_eq!(p.to_string(), "edge[4]");
    }
}
