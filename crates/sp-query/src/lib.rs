//! # sp-query — query graph model and search primitives
//!
//! A *query graph* (Section 2 of the paper) is a small directed, typed graph
//! describing the pattern to detect continuously: attack patterns such as the
//! exfiltration tree of Figure 1, LSBench social queries, or the randomly
//! generated path/tree queries of Section 6.
//!
//! This crate provides:
//!
//! * [`QueryGraph`] — the query graph itself, with typed vertices (possibly
//!   the wildcard type) and typed edges;
//! * [`QuerySubgraph`] — an edge-subset view of a query graph, used by the
//!   SJ-Tree nodes to describe which part of the query each node matches;
//! * signatures of the two *search primitives* used by the decomposition
//!   (Section 5.1): [`EdgeSignature`] for single edges and
//!   [`TwoEdgePathSignature`] for 2-edge paths, both of which double as
//!   histogram keys in the selectivity estimator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
mod prefix;
mod query;
mod signature;
mod subgraph;

pub use canonical::{
    canonicalize_subgraph, CanonicalEdge, CanonicalMapping, LeafSignature, MAX_CANONICAL_VERTICES,
};
pub use prefix::{prefix_chain, ChainStep, PrefixSignature};
pub use query::{QueryEdge, QueryEdgeId, QueryGraph, QueryVertex, QueryVertexId};
pub use signature::{DirectedEdgeType, EdgeSignature, Primitive, TwoEdgePathSignature};
pub use subgraph::QuerySubgraph;
