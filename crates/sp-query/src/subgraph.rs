//! Edge-subset views of a query graph.
//!
//! Each SJ-Tree node "corresponds to a subgraph of the query graph"
//! (Definition 3.1.1). Because the decomposition partitions the query's
//! *edges*, a query subgraph is fully described by the set of query edge ids
//! it contains; vertices are derived. [`QuerySubgraph`] is that edge-subset
//! view, with the set operations the SJ-Tree needs: join (union, Definition
//! 3.1.3) and cut (vertex intersection, Property 4).

use crate::query::{QueryEdgeId, QueryGraph, QueryVertexId};
use crate::signature::Primitive;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A subgraph of a query graph, identified by a subset of its edges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySubgraph {
    edges: BTreeSet<QueryEdgeId>,
    vertices: BTreeSet<QueryVertexId>,
}

impl QuerySubgraph {
    /// Creates an empty subgraph.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a subgraph from a set of edges of `query`; vertices are the
    /// endpoints of those edges.
    pub fn from_edges<I>(query: &QueryGraph, edges: I) -> Self
    where
        I: IntoIterator<Item = QueryEdgeId>,
    {
        let mut sg = Self::default();
        for e in edges {
            sg.insert_edge(query, e);
        }
        sg
    }

    /// Adds a single edge (and its endpoints).
    pub fn insert_edge(&mut self, query: &QueryGraph, e: QueryEdgeId) {
        let edge = query.edge(e);
        self.edges.insert(e);
        self.vertices.insert(edge.src);
        self.vertices.insert(edge.dst);
    }

    /// Number of edges in the subgraph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices in the subgraph.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` when the subgraph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates over the edge ids in ascending order.
    pub fn edges(&self) -> impl Iterator<Item = QueryEdgeId> + '_ {
        self.edges.iter().copied()
    }

    /// Iterates over the vertex ids in ascending order.
    pub fn vertices(&self) -> impl Iterator<Item = QueryVertexId> + '_ {
        self.vertices.iter().copied()
    }

    /// Membership test for an edge.
    pub fn contains_edge(&self, e: QueryEdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Membership test for a vertex.
    pub fn contains_vertex(&self, v: QueryVertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// The join of two subgraphs: union of vertices and edges
    /// (Definition 3.1.3, `G3 = G1 ⋈ G2`).
    pub fn join(&self, other: &QuerySubgraph) -> QuerySubgraph {
        QuerySubgraph {
            edges: self.edges.union(&other.edges).copied().collect(),
            vertices: self.vertices.union(&other.vertices).copied().collect(),
        }
    }

    /// The cut between two subgraphs: the vertices they share (Property 4's
    /// `CUT-SUBGRAPH`). The decomposition partitions edges, so the
    /// intersection never contains edges.
    pub fn cut_vertices(&self, other: &QuerySubgraph) -> Vec<QueryVertexId> {
        self.vertices
            .intersection(&other.vertices)
            .copied()
            .collect()
    }

    /// Returns `true` if the two subgraphs share no edges.
    pub fn is_edge_disjoint(&self, other: &QuerySubgraph) -> bool {
        self.edges.intersection(&other.edges).next().is_none()
    }

    /// Returns `true` when the subgraph is connected within `query`
    /// (ignoring edge direction). Empty subgraphs count as connected.
    pub fn is_connected(&self, query: &QueryGraph) -> bool {
        if self.edges.is_empty() {
            return true;
        }
        let mut seen: BTreeSet<QueryVertexId> = BTreeSet::new();
        let mut stack = Vec::new();
        let start = *self.vertices.iter().next().expect("non-empty subgraph");
        seen.insert(start);
        stack.push(start);
        while let Some(v) = stack.pop() {
            for e in self.edges.iter() {
                let edge = query.edge(*e);
                if let Some(n) = edge.other_endpoint(v) {
                    if edge.touches(v) && self.vertices.contains(&n) && seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        seen.len() == self.vertices.len()
    }

    /// If this subgraph is a search primitive (a single edge or a 2-edge
    /// wedge), returns its signature; `None` for anything larger or for a
    /// disconnected 2-edge subgraph.
    pub fn primitive(&self, query: &QueryGraph) -> Option<Primitive> {
        let edges: Vec<QueryEdgeId> = self.edges.iter().copied().collect();
        match edges.as_slice() {
            [e] => Some(query.edge_primitive(*e)),
            [a, b] => query.wedge_primitive(*a, *b),
            _ => None,
        }
    }

    /// Whether this subgraph covers every edge of the query graph.
    pub fn covers(&self, query: &QueryGraph) -> bool {
        self.edges.len() == query.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::EdgeType;

    fn path4() -> QueryGraph {
        let mut q = QueryGraph::new("path4");
        let v: Vec<_> = (0..5).map(|_| q.add_any_vertex()).collect();
        for i in 0..4 {
            q.add_edge(v[i], v[i + 1], EdgeType(i as u32));
        }
        q
    }

    #[test]
    fn from_edges_collects_endpoints() {
        let q = path4();
        let sg = QuerySubgraph::from_edges(&q, [QueryEdgeId(0), QueryEdgeId(1)]);
        assert_eq!(sg.num_edges(), 2);
        assert_eq!(sg.num_vertices(), 3);
        assert!(sg.contains_vertex(QueryVertexId(1)));
        assert!(!sg.contains_vertex(QueryVertexId(4)));
    }

    #[test]
    fn join_is_union() {
        let q = path4();
        let a = QuerySubgraph::from_edges(&q, [QueryEdgeId(0)]);
        let b = QuerySubgraph::from_edges(&q, [QueryEdgeId(1), QueryEdgeId(2)]);
        let j = a.join(&b);
        assert_eq!(j.num_edges(), 3);
        assert_eq!(j.num_vertices(), 4);
        assert!(j.is_connected(&q));
    }

    #[test]
    fn cut_vertices_is_shared_vertices() {
        let q = path4();
        let a = QuerySubgraph::from_edges(&q, [QueryEdgeId(0), QueryEdgeId(1)]);
        let b = QuerySubgraph::from_edges(&q, [QueryEdgeId(2), QueryEdgeId(3)]);
        assert_eq!(a.cut_vertices(&b), vec![QueryVertexId(2)]);
        assert!(a.is_edge_disjoint(&b));
        let c = QuerySubgraph::from_edges(&q, [QueryEdgeId(1)]);
        assert!(!a.is_edge_disjoint(&c));
    }

    #[test]
    fn connectivity_detection() {
        let q = path4();
        let connected = QuerySubgraph::from_edges(&q, [QueryEdgeId(1), QueryEdgeId(2)]);
        assert!(connected.is_connected(&q));
        let disconnected = QuerySubgraph::from_edges(&q, [QueryEdgeId(0), QueryEdgeId(3)]);
        assert!(!disconnected.is_connected(&q));
        assert!(QuerySubgraph::empty().is_connected(&q));
    }

    #[test]
    fn primitive_classification() {
        let q = path4();
        let one = QuerySubgraph::from_edges(&q, [QueryEdgeId(2)]);
        assert!(matches!(one.primitive(&q), Some(Primitive::SingleEdge(t)) if t == EdgeType(2)));
        let wedge = QuerySubgraph::from_edges(&q, [QueryEdgeId(1), QueryEdgeId(2)]);
        assert!(matches!(
            wedge.primitive(&q),
            Some(Primitive::TwoEdgePath(_))
        ));
        let non_wedge = QuerySubgraph::from_edges(&q, [QueryEdgeId(0), QueryEdgeId(3)]);
        assert!(non_wedge.primitive(&q).is_none());
        let big = QuerySubgraph::from_edges(&q, [QueryEdgeId(0), QueryEdgeId(1), QueryEdgeId(2)]);
        assert!(big.primitive(&q).is_none());
    }

    #[test]
    fn covers_detects_full_query() {
        let q = path4();
        let all = QuerySubgraph::from_edges(&q, q.edge_ids());
        assert!(all.covers(&q));
        let part = QuerySubgraph::from_edges(&q, [QueryEdgeId(0)]);
        assert!(!part.covers(&q));
    }
}
