//! Integration tests of the parallel runtime against hand-rolled streams:
//! sequential equivalence, backpressure under a deliberately slow sink,
//! mid-stream (de)registration, and graceful shutdown.

use sp_graph::{EdgeEvent, Schema, Timestamp};
use sp_query::QueryGraph;
use sp_runtime::{ParallelStreamProcessor, RuntimeConfig};
use streampattern::{FnSink, QueryId, Strategy, StreamProcessor};

/// Schema with a handful of protocols over "ip" vertices.
fn cyber_schema() -> Schema {
    let mut schema = Schema::new();
    schema.intern_vertex_type("ip");
    for proto in ["tcp", "esp", "dns", "icmp"] {
        schema.intern_edge_type(proto);
    }
    schema
}

/// A deterministic pseudo-random stream mixing all four protocols, with
/// enough structure that multi-edge patterns complete regularly.
fn synth_stream(schema: &Schema, n: usize) -> Vec<EdgeEvent> {
    let ip = schema.vertex_type("ip").unwrap();
    let protos = ["tcp", "tcp", "tcp", "dns", "esp", "icmp"];
    let mut events = Vec::with_capacity(n);
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let src = (state >> 33) % 50;
        let dst = (state >> 17) % 50;
        let et = schema.edge_type(protos[i % protos.len()]).unwrap();
        events.push(EdgeEvent::homogeneous(
            src,
            dst,
            ip,
            et,
            Timestamp(i as u64),
        ));
    }
    events
}

/// The monitoring queries: two-hop patterns over different protocol pairs
/// plus a single-edge watcher, exercising dispatch skew across shards.
fn queries(schema: &Schema) -> Vec<(QueryGraph, Strategy, Option<u64>)> {
    let tcp = schema.edge_type("tcp").unwrap();
    let esp = schema.edge_type("esp").unwrap();
    let dns = schema.edge_type("dns").unwrap();
    let icmp = schema.edge_type("icmp").unwrap();
    let two_hop = |name: &str, a_t, b_t| {
        let mut q = QueryGraph::new(name);
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, a_t);
        q.add_edge(b, c, b_t);
        q
    };
    let mut dns_watch = QueryGraph::new("dns-watch");
    let a = dns_watch.add_any_vertex();
    let b = dns_watch.add_any_vertex();
    dns_watch.add_edge(a, b, dns);
    vec![
        (
            two_hop("esp-tcp", esp, tcp),
            Strategy::SingleLazy,
            Some(200),
        ),
        (two_hop("dns-tcp", dns, tcp), Strategy::PathLazy, Some(100)),
        (two_hop("icmp-esp", icmp, esp), Strategy::Single, None),
        (dns_watch, Strategy::SingleLazy, Some(50)),
        (two_hop("tcp-tcp", tcp, tcp), Strategy::SingleLazy, Some(30)),
    ]
}

/// Canonical multiset of matches: one sortable string per match. Worker
/// replicas ingest the identical stream, so data edge ids align with the
/// sequential processor's and the encoding is exact.
fn canonical(mut matches: Vec<(QueryId, String)>) -> Vec<(QueryId, String)> {
    matches.sort();
    matches
}

fn sequential_matches(events: &[EdgeEvent]) -> Vec<(QueryId, String)> {
    let schema = cyber_schema();
    let mut proc = StreamProcessor::new(schema.clone());
    for (q, s, w) in queries(&schema) {
        proc.register(q, s, w).unwrap();
    }
    let mut out = Vec::new();
    let mut sink = FnSink(|q: QueryId, m: streampattern::SubgraphMatch| {
        out.push((q, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
    });
    for ev in events {
        proc.process_into(ev, &mut sink);
    }
    canonical(out)
}

fn parallel_matches(events: &[EdgeEvent], workers: usize, batch: usize) -> Vec<(QueryId, String)> {
    let schema = cyber_schema();
    let mut runtime = ParallelStreamProcessor::new(
        schema.clone(),
        RuntimeConfig::with_workers(workers).batch_size(batch),
    );
    for (q, s, w) in queries(&schema) {
        runtime.register(q, s, w).unwrap();
    }
    let mut out = Vec::new();
    let mut sink = FnSink(|q: QueryId, m: streampattern::SubgraphMatch| {
        out.push((q, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
    });
    runtime.process_all_into(events.iter(), &mut sink);
    canonical(out)
}

#[test]
fn parallel_equals_sequential_for_1_2_4_workers() {
    let schema = cyber_schema();
    let events = synth_stream(&schema, 3_000);
    let expected = sequential_matches(&events);
    assert!(
        expected.len() > 50,
        "stream too quiet to be a meaningful test: {} matches",
        expected.len()
    );
    for workers in [1, 2, 4] {
        let got = parallel_matches(&events, workers, 64);
        assert_eq!(
            got, expected,
            "match multiset diverged at {workers} workers"
        );
    }
}

#[test]
fn equivalence_survives_odd_batch_sizes() {
    let schema = cyber_schema();
    let events = synth_stream(&schema, 700);
    let expected = sequential_matches(&events);
    for batch in [1, 7, 700, 10_000] {
        let got = parallel_matches(&events, 3, batch);
        assert_eq!(got, expected, "batch size {batch} diverged");
    }
}

#[test]
fn backpressure_engages_with_a_slow_sink_and_loses_nothing() {
    let schema = cyber_schema();
    let events = synth_stream(&schema, 1_200);
    let expected = sequential_matches(&events).len() as u64;
    // Tiny channels everywhere: 1 batch in flight per worker, 1 match batch
    // in the aggregation channel. The sink sleeps per match, so the
    // aggregation channel fills, workers block on it, input channels fill,
    // and the ingest loop has to wait.
    let mut runtime = ParallelStreamProcessor::new(
        schema.clone(),
        RuntimeConfig::with_workers(2)
            .batch_size(16)
            .channel_capacity(1)
            .match_capacity(1),
    );
    for (q, s, w) in queries(&schema) {
        runtime.register(q, s, w).unwrap();
    }
    let mut seen = 0u64;
    let mut sink = FnSink(|_q: QueryId, _m: streampattern::SubgraphMatch| {
        seen += 1;
        std::thread::sleep(std::time::Duration::from_micros(200));
    });
    let delivered = runtime.process_all_into(events.iter(), &mut sink);
    assert_eq!(seen, expected, "slow sink dropped matches");
    assert_eq!(delivered, expected);
    let stats = runtime.stats();
    assert!(
        stats.backpressure_events > 0,
        "bounded channels never pushed back: {stats:?}"
    );
}

#[test]
fn queries_spread_across_shards_by_cost() {
    let schema = cyber_schema();
    let mut runtime = ParallelStreamProcessor::new(schema.clone(), RuntimeConfig::with_workers(4));
    let mut ids = Vec::new();
    for (q, s, w) in queries(&schema) {
        ids.push(runtime.register(q, s, w).unwrap());
    }
    let shards: std::collections::BTreeSet<usize> =
        ids.iter().filter_map(|&id| runtime.shard_of(id)).collect();
    assert!(
        shards.len() >= 3,
        "5 queries landed on only {} of 4 shards",
        shards.len()
    );
    // Greedy assignment keeps the loads within one query-cost of each other:
    // no shard is empty while another holds two queries of positive cost.
    let costs = runtime.shard_costs();
    assert_eq!(costs.len(), 4);
    assert!(costs.iter().all(|&c| c >= 0.0));
}

#[test]
fn deregister_midstream_returns_engine_and_stops_matching() {
    let schema = cyber_schema();
    let events = synth_stream(&schema, 600);
    let mut runtime = ParallelStreamProcessor::new(
        schema.clone(),
        RuntimeConfig::with_workers(2).batch_size(32),
    );
    let mut ids = Vec::new();
    for (q, s, w) in queries(&schema) {
        ids.push(runtime.register(q, s, w).unwrap());
    }
    let (first, second) = events.split_at(300);
    let before = runtime.process_all(first.iter());
    assert!(before > 0);

    // Pull the busiest query (tcp-tcp) out mid-stream.
    let victim = ids[4];
    let engine = runtime.deregister(victim).expect("victim was registered");
    assert!(engine.profile().edges_processed > 0);
    assert_eq!(runtime.num_queries(), 4);
    assert!(runtime.profile_for(victim).is_none());

    let mut post = Vec::new();
    let mut sink = FnSink(|q: QueryId, _m: streampattern::SubgraphMatch| post.push(q));
    runtime.process_all_into(second.iter(), &mut sink);
    assert!(
        post.iter().all(|&q| q != victim),
        "deregistered query kept matching"
    );

    // Sequential cross-check of the same schedule.
    let mut seq = StreamProcessor::new(schema.clone());
    let mut seq_ids = Vec::new();
    for (q, s, w) in queries(&schema) {
        seq_ids.push(seq.register(q, s, w).unwrap());
    }
    let seq_before = seq.process_all(first.iter());
    seq.deregister(seq_ids[4]).unwrap();
    let seq_after = seq.process_all(second.iter());
    assert_eq!(before, seq_before);
    assert_eq!(post.len() as u64, seq_after);
}

#[test]
fn late_registration_sees_retained_history() {
    // A query registered mid-stream must match against edges that arrived
    // before it was registered (up to retention), exactly like the
    // sequential processor.
    let schema = cyber_schema();
    let ip = schema.vertex_type("ip").unwrap();
    let esp = schema.edge_type("esp").unwrap();
    let tcp = schema.edge_type("tcp").unwrap();
    for workers in [1, 3] {
        let mut runtime =
            ParallelStreamProcessor::new(schema.clone(), RuntimeConfig::with_workers(workers));
        // Warm-up edge arrives before any query exists.
        runtime.process_all([EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1))].iter());
        let mut q = QueryGraph::new("esp-tcp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, esp);
        q.add_edge(b, c, tcp);
        runtime.register(q, Strategy::SingleLazy, None).unwrap();
        // The completing edge arrives after registration; the esp edge is
        // pre-registration history every replica must have retained.
        let found =
            runtime.process_all([EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(2))].iter());
        assert_eq!(
            found, 1,
            "late registration lost history at {workers} workers"
        );
    }
}

#[test]
fn profile_merges_worker_counters() {
    let schema = cyber_schema();
    let events = synth_stream(&schema, 1_000);
    let mut runtime = ParallelStreamProcessor::new(schema.clone(), RuntimeConfig::with_workers(3));
    for (q, s, w) in queries(&schema) {
        runtime.register(q, s, w).unwrap();
    }
    let found = runtime.process_all(events.iter());

    // Sequential reference.
    let mut seq = StreamProcessor::new(schema.clone());
    let mut seq_ids = Vec::new();
    for (q, s, w) in queries(&schema) {
        seq_ids.push(seq.register(q, s, w).unwrap());
    }
    let seq_found = seq.process_all(events.iter());
    assert_eq!(found, seq_found);

    let profile = runtime.profile();
    let seq_profile = seq.profile();
    assert_eq!(profile.edges_processed, 1_000);
    assert_eq!(profile.complete_matches, seq_profile.complete_matches);
    assert_eq!(profile.iso_searches, seq_profile.iso_searches);
    assert_eq!(profile.leaf_matches, seq_profile.leaf_matches);

    // Per-query counters line up one to one (ids are assigned in the same
    // registration order).
    for &id in &seq_ids {
        let par = runtime.profile_for(id).expect("query registered");
        let seq_p = seq.profile_for(id).expect("query registered");
        assert_eq!(par.edges_processed, seq_p.edges_processed, "query {id}");
        assert_eq!(par.complete_matches, seq_p.complete_matches, "query {id}");
    }
}

#[test]
fn shutdown_drains_and_reports() {
    let schema = cyber_schema();
    let events = synth_stream(&schema, 500);
    let mut runtime = ParallelStreamProcessor::new(schema.clone(), RuntimeConfig::with_workers(2));
    for (q, s, w) in queries(&schema) {
        runtime.register(q, s, w).unwrap();
    }
    let found = runtime.process_all(events.iter());
    let report = runtime.shutdown();
    assert_eq!(report.total_matches, found);
    assert_eq!(report.profile.edges_processed, 500);
    assert_eq!(report.workers.len(), 2);
    assert!(report.pending_matches.is_empty());
    let total_hosted: usize = report.workers.iter().map(|w| w.per_query.len()).sum();
    assert_eq!(total_hosted, 5);
    // Every replica ingested the full stream (no ingest filtering).
    for w in &report.workers {
        assert_eq!(w.edges_ingested, 500);
    }
}

#[test]
fn ingest_filter_keeps_match_counts_and_shrinks_replicas() {
    let schema = cyber_schema();
    let events = synth_stream(&schema, 1_500);
    let expected = sequential_matches(&events).len() as u64;
    let mut runtime = ParallelStreamProcessor::new(
        schema.clone(),
        RuntimeConfig::with_workers(4).ingest_filtering(true),
    );
    for (q, s, w) in queries(&schema) {
        runtime.register(q, s, w).unwrap();
    }
    let found = runtime.process_all(events.iter());
    assert_eq!(found, expected, "filtered ingest changed the match count");
    let report = runtime.shutdown();
    // At least one shard hosts no esp/icmp-heavy query and must have skipped
    // part of the stream.
    assert!(
        report.workers.iter().any(|w| w.edges_ingested < 1_500),
        "filter never skipped anything"
    );
}

#[test]
fn shard_assignment_co_locates_leaf_sharers() {
    // Two edge types with equal selectivity (50/50 stream), so every two-hop
    // query has the same estimated cost. Plain least-loaded assignment would
    // alternate shards and split the sharers; the sharing discount must
    // instead co-locate queries with identical canonical leaves.
    let schema = cyber_schema();
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("tcp").unwrap();
    let dns = schema.edge_type("dns").unwrap();
    let mut estimator = streampattern::SelectivityEstimator::new();
    for i in 0..100u64 {
        estimator.observe_edge(&sp_graph::EdgeData {
            id: sp_graph::EdgeId(i),
            src: sp_graph::VertexId(i),
            dst: sp_graph::VertexId(i + 1_000),
            edge_type: if i % 2 == 0 { tcp } else { dns },
            timestamp: Timestamp(i),
        });
    }
    let two_hop = |name: &str, t| {
        let mut q = QueryGraph::new(name);
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, t);
        q.add_edge(b, c, t);
        q
    };
    let mut runtime = ParallelStreamProcessor::new(
        schema.clone(),
        RuntimeConfig::with_workers(2).statistics(false),
    )
    .with_estimator(estimator);
    let t1 = runtime
        .register(two_hop("tcp-1", tcp), Strategy::SingleLazy, None)
        .unwrap();
    let d1 = runtime
        .register(two_hop("dns-1", dns), Strategy::SingleLazy, None)
        .unwrap();
    let t2 = runtime
        .register(two_hop("tcp-2", tcp), Strategy::SingleLazy, None)
        .unwrap();
    let d2 = runtime
        .register(two_hop("dns-2", dns), Strategy::SingleLazy, None)
        .unwrap();
    assert_eq!(
        runtime.shard_of(t1),
        runtime.shard_of(t2),
        "tcp sharers must co-locate"
    );
    assert_eq!(
        runtime.shard_of(d1),
        runtime.shard_of(d2),
        "dns sharers must co-locate"
    );
    assert_ne!(runtime.shard_of(t1), runtime.shard_of(d1));
    // Each shard hosts exactly one distinct leaf shape (shared twice).
    assert_eq!(runtime.shard_resident_leaves(0), 1);
    assert_eq!(runtime.shard_resident_leaves(1), 1);

    // Deregistering the sharers releases the residency refcounts.
    runtime.deregister(t1).unwrap();
    runtime.deregister(t2).unwrap();
    let tcp_shard = runtime.shard_of(d1).map(|w| 1 - w).unwrap();
    assert_eq!(runtime.shard_resident_leaves(tcp_shard), 0);

    // The co-located setup still answers correctly end to end.
    let mut events = Vec::new();
    for i in 0..40u64 {
        events.push(EdgeEvent::homogeneous(i, i + 1, ip, dns, Timestamp(i)));
    }
    let found = runtime.process_all(events.iter());
    // Each consecutive dns pair matches both registered dns queries.
    assert_eq!(found, 2 * 39);
}

#[test]
fn shard_assignment_co_locates_prefix_sharers() {
    // Four queries over the SAME two leaf shapes (one tcp edge, one dns
    // edge) but two different join-cut structures: a path (the dns edge
    // hangs off the tcp edge's destination) and a fan-out (both edges leave
    // the same source). Leaf-shape residency cannot tell the shards apart
    // once both host the shapes — only the canonical *chain* (leaf sequence
    // + glue) does, so co-locating path with path and fan with fan proves
    // the prefix-aware discount is live.
    let schema = cyber_schema();
    let tcp = schema.edge_type("tcp").unwrap();
    let dns = schema.edge_type("dns").unwrap();
    let mut estimator = streampattern::SelectivityEstimator::new();
    for i in 0..100u64 {
        estimator.observe_edge(&sp_graph::EdgeData {
            id: sp_graph::EdgeId(i),
            src: sp_graph::VertexId(i),
            dst: sp_graph::VertexId(i + 1_000),
            edge_type: if i % 2 == 0 { tcp } else { dns },
            timestamp: Timestamp(i),
        });
    }
    let path = |name: &str| {
        let mut q = QueryGraph::new(name);
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, tcp);
        q.add_edge(b, c, dns);
        q
    };
    let fan = |name: &str| {
        let mut q = QueryGraph::new(name);
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, tcp);
        q.add_edge(a, c, dns);
        q
    };
    let mut runtime = ParallelStreamProcessor::new(
        schema.clone(),
        RuntimeConfig::with_workers(2).statistics(false),
    )
    .with_estimator(estimator);
    let p1 = runtime
        .register(path("path-1"), Strategy::SingleLazy, None)
        .unwrap();
    let f1 = runtime
        .register(fan("fan-1"), Strategy::SingleLazy, None)
        .unwrap();
    let p2 = runtime
        .register(path("path-2"), Strategy::SingleLazy, None)
        .unwrap();
    let f2 = runtime
        .register(fan("fan-2"), Strategy::SingleLazy, None)
        .unwrap();
    assert_eq!(
        runtime.shard_of(p1),
        runtime.shard_of(p2),
        "identical chains must co-locate"
    );
    assert_eq!(
        runtime.shard_of(f1),
        runtime.shard_of(f2),
        "identical chains must co-locate"
    );
    assert_ne!(
        runtime.shard_of(p1),
        runtime.shard_of(f1),
        "different glue, different shard"
    );
    // Each shard hosts exactly one distinct chain (refcounted twice), and
    // deregistration releases the refcounts.
    assert_eq!(runtime.shard_resident_chains(0), 1);
    assert_eq!(runtime.shard_resident_chains(1), 1);
    let path_shard = runtime.shard_of(p1).unwrap();
    runtime.deregister(p1).unwrap();
    assert_eq!(runtime.shard_resident_chains(path_shard), 1);
    runtime.deregister(p2).unwrap();
    assert_eq!(runtime.shard_resident_chains(path_shard), 0);
    drop(runtime.shutdown());
    let _ = (f1, f2);
}

/// The facade mirrors resident chains as *trie paths*: a depth-3 chain
/// contributes both its depth-2 and depth-3 prefix nodes to the shard's
/// resident set (the worker's shared-join trie can materialize either), and
/// the refcounts release as a path when the queries leave.
#[test]
fn resident_chains_count_trie_paths() {
    let schema = cyber_schema();
    let tcp = schema.edge_type("tcp").unwrap();
    let dns = schema.edge_type("dns").unwrap();
    let path3 = |name: &str| {
        let mut q = QueryGraph::new(name);
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        let d = q.add_any_vertex();
        q.add_edge(a, b, tcp);
        q.add_edge(b, c, dns);
        q.add_edge(c, d, tcp);
        q
    };
    let mut runtime = ParallelStreamProcessor::new(
        schema.clone(),
        RuntimeConfig::with_workers(1).statistics(false),
    );
    let a = runtime
        .register(path3("deep-1"), Strategy::SingleLazy, None)
        .unwrap();
    assert_eq!(
        runtime.shard_resident_chains(0),
        2,
        "a depth-3 chain is resident as its depth-2 and depth-3 paths"
    );
    let b = runtime
        .register(path3("deep-2"), Strategy::SingleLazy, None)
        .unwrap();
    assert_eq!(runtime.shard_resident_chains(0), 2, "paths are refcounted");
    runtime.deregister(a).unwrap();
    assert_eq!(runtime.shard_resident_chains(0), 2);
    runtime.deregister(b).unwrap();
    assert_eq!(runtime.shard_resident_chains(0), 0);
    drop(runtime.shutdown());
}

/// Regression: `RuntimeStats::backpressure_events` used to be the only
/// backpressure signal, and it is only observable from the ingest thread via
/// `stats()` (in practice: after the run). With a `MetricsRegistry` attached,
/// the stall counter and the per-worker queue-depth gauges are live shared
/// handles — readable mid-stream from any thread — and the counter must agree
/// with the legacy stat.
#[test]
fn backpressure_and_queue_depth_are_live_through_metrics() {
    let schema = cyber_schema();
    let events = synth_stream(&schema, 1_200);
    let expected = sequential_matches(&events).len() as u64;
    let registry = sp_runtime::MetricsRegistry::new();
    // Same deliberately tiny channels as the slow-sink scenario above.
    let mut runtime = ParallelStreamProcessor::new(
        schema.clone(),
        RuntimeConfig::with_workers(2)
            .batch_size(16)
            .channel_capacity(1)
            .match_capacity(1),
    )
    .with_metrics(&registry);
    for (q, s, w) in queries(&schema) {
        runtime.register(q, s, w).unwrap();
    }
    let stall_counter = registry.counter("runtime.backpressure_stalls_total");
    let depth_w0 = registry.gauge("runtime.queue_depth.w0");
    let depth_w1 = registry.gauge("runtime.queue_depth.w1");
    let mut seen = 0u64;
    let mut mid_stream_stalls = 0u64;
    let mut max_depth_seen = 0i64;
    let mut sink = FnSink(|_q: QueryId, _m: streampattern::SubgraphMatch| {
        seen += 1;
        // Live reads while the pipeline is saturated — no shutdown, no
        // stats() call. The gauges bound by the channel capacity (+1 for the
        // batch the facade has stamped but not yet enqueued).
        mid_stream_stalls = mid_stream_stalls.max(stall_counter.get());
        max_depth_seen = max_depth_seen.max(depth_w0.get()).max(depth_w1.get());
        std::thread::sleep(std::time::Duration::from_micros(200));
    });
    let delivered = runtime.process_all_into(events.iter(), &mut sink);
    assert_eq!(seen, expected, "metrics changed the match multiset");
    assert_eq!(delivered, expected);
    assert!(
        mid_stream_stalls > 0,
        "stall counter not visible live while the sink was slow"
    );
    assert!(
        max_depth_seen >= 1,
        "queue-depth gauges never showed an enqueued batch"
    );
    assert!(
        max_depth_seen <= 2,
        "queue depth exceeded channel capacity + in-flight batch: {max_depth_seen}"
    );
    let stats = runtime.stats();
    assert_eq!(
        stall_counter.get(),
        stats.backpressure_events,
        "live counter diverged from RuntimeStats"
    );
    // After the full drain inside process_all_into, every broadcast batch
    // has been dequeued: the gauges must have returned to zero.
    assert_eq!(depth_w0.get(), 0, "w0 queue depth did not drain to 0");
    assert_eq!(depth_w1.get(), 0, "w1 queue depth did not drain to 0");
    // Worker-side pipeline metrics aggregated across both replicas: each
    // replica ingests all 1200 events.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("stream.edges_total"), Some(2 * 1_200));
    assert_eq!(snap.counter("stream.matches_total"), Some(expected));
    let latency = snap.histogram("match.latency_ns").expect("latency series");
    assert_eq!(latency.count(), expected);
    assert!(latency.percentile(0.5).unwrap() > 0);
    drop(runtime.shutdown());
}
