//! The worker side of the runtime: one thread per shard, each owning a full
//! [`StreamProcessor`] replica (its own windowed `DynamicGraph` plus the
//! shard's slice of the query registry).
//!
//! A worker is a small actor: it drains one bounded input channel in FIFO
//! order, so control messages (register, deregister, drain, report) are
//! naturally serialized against the edge batches sent before them — a query
//! registered after batch *k* sees exactly the stream suffix starting at
//! batch *k+1* on every worker, just as it would on the sequential
//! processor.

use crate::config::RuntimeConfig;
use sp_graph::{monotonic_nanos, EdgeEvent, Schema};
use sp_iso::SubgraphMatch;
use sp_metrics::{Gauge, Histogram};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use streampattern::{
    ContinuousQueryEngine, FnSink, PipelineMetrics, ProfileCounters, QueryId, SjTree, Strategy,
    StreamProcessor,
};

/// One aggregation-channel message: the originating worker index and the
/// `(query, match)` pairs produced by one input batch, in report order.
/// Matches from one worker always arrive in the order that worker produced
/// them; interleaving across workers is arbitrary.
pub(crate) type MatchBatch = (usize, Vec<(QueryId, SubgraphMatch)>);

/// Messages a worker accepts on its input channel.
pub(crate) enum WorkerMsg {
    /// A batch of stream events, shared across all workers via `Arc`.
    /// `sent_ns` is the facade's broadcast instant on the process monotonic
    /// clock (0 when metrics are off) — the worker's dequeue instant minus
    /// it is the batch's channel sojourn time.
    Batch {
        events: Arc<Vec<EdgeEvent>>,
        sent_ns: u64,
    },
    /// Attach telemetry handles: the shared pipeline bundle for this
    /// worker's processor replica, plus this worker's queue-depth gauge and
    /// the shared batch-sojourn histogram. Rides the FIFO channel, so
    /// batches sent before it stay unmetered and batches after it are fully
    /// metered.
    Metrics {
        pipeline: PipelineMetrics,
        queue_depth: Gauge,
        sojourn: Histogram,
    },
    /// Register an engine under the facade's global query id.
    Register {
        global: QueryId,
        engine: Box<ContinuousQueryEngine>,
    },
    /// Deregister a query, replying with its engine (runtime state intact).
    Deregister {
        global: QueryId,
        reply: Sender<Option<Box<ContinuousQueryEngine>>>,
    },
    /// Apply the facade's global graph-retention window to the replica.
    SetRetention(Option<u64>),
    /// Swap a query's decomposition for the facade-planned replacement
    /// (drift-adaptive re-decomposition). Riding the FIFO channel, the swap
    /// is serialized against the edge batches sent before it, so every
    /// run interleaves identically to a sequential processor performing the
    /// same swap at the same stream position; the worker rebuilds the
    /// engine by replaying its retained graph replica, preserving the
    /// match multiset.
    Redecompose {
        /// The facade's global query id.
        global: QueryId,
        /// The (possibly re-chosen) strategy of the new plan.
        strategy: Strategy,
        /// The SJ-Tree decomposition computed from the facade's statistics.
        tree: Box<SjTree>,
    },
    /// Reply with a snapshot of this worker's counters.
    Report { reply: Sender<WorkerReport> },
    /// Barrier: every batch sent before this message has been fully
    /// processed and its matches pushed into the aggregation channel. The
    /// ack carries the cumulative number of matches emitted by this worker.
    Drain { reply: Sender<DrainAck> },
    /// Terminate the worker loop.
    Shutdown,
}

/// Acknowledgement of a [`WorkerMsg::Drain`] barrier.
pub(crate) struct DrainAck {
    /// Cumulative matches this worker has pushed into the aggregation
    /// channel since it started.
    pub matches_emitted: u64,
}

/// Snapshot of one worker's state, used for profile aggregation and for the
/// per-shard tables in `sp-bench`.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker (shard) index.
    pub worker: usize,
    /// Profiling counters per query hosted on this shard, tagged with the
    /// facade's global ids and sorted by id.
    pub per_query: Vec<(QueryId, ProfileCounters)>,
    /// Events this replica ingested into its graph. Equals the facade's
    /// event count unless ingest filtering is enabled.
    pub edges_ingested: u64,
    /// Vertex-type conflicts seen by this replica's ingestion path.
    pub vertex_type_conflicts: u64,
    /// Cumulative matches this worker has emitted.
    pub matches_found: u64,
    /// Edges currently live in the shard's graph replica.
    pub graph_edges_live: usize,
    /// Total partial matches ever stored by this replica's match stores
    /// (engines plus shared prefix tables) — this worker's share of the
    /// soak's `alloc.allocs_per_match` denominator.
    pub stored_matches: u64,
}

/// The worker thread body. Runs until [`WorkerMsg::Shutdown`] arrives or the
/// input channel disconnects.
pub(crate) fn worker_loop(
    idx: usize,
    schema: Schema,
    config: RuntimeConfig,
    rx: Receiver<WorkerMsg>,
    match_tx: SyncSender<MatchBatch>,
) {
    // Statistics stay off in workers: the facade maintains the single
    // estimator on the ingest path, so `Auto` registrations see exactly the
    // stream prefix a sequential processor would have seen.
    let mut proc = StreamProcessor::new(schema)
        .with_statistics(false)
        .with_purge_interval(config.purge_interval)
        .with_match_interning(config.match_interning);
    let mut to_global: HashMap<QueryId, QueryId> = HashMap::new();
    let mut to_local: HashMap<QueryId, QueryId> = HashMap::new();
    let mut retention_override: Option<Option<u64>> = None;
    let mut emitted: u64 = 0;
    // Telemetry handles, attached via `WorkerMsg::Metrics`; `None` keeps the
    // loop clock-free.
    let mut telemetry: Option<(Gauge, Histogram)> = None;

    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Batch { events, sent_ns } => {
                if let Some((queue_depth, sojourn)) = &telemetry {
                    if sent_ns != 0 {
                        sojourn.record(monotonic_nanos().saturating_sub(sent_ns));
                    }
                    queue_depth.sub(1);
                }
                let mut out: Vec<(QueryId, SubgraphMatch)> = Vec::new();
                {
                    let mut sink = FnSink(|local: QueryId, m: SubgraphMatch| {
                        let global = to_global
                            .get(&local)
                            .copied()
                            .expect("match from an unmapped local query");
                        out.push((global, m));
                    });
                    if config.ingest_filter {
                        // The candidate pre-filter reads the registry between
                        // events, so this path stays per-event.
                        for ev in events.iter() {
                            if proc.registry().candidates(ev.edge_type).is_empty() {
                                continue;
                            }
                            proc.process_into(ev, &mut sink);
                        }
                    } else {
                        // Default path: the whole batch runs through the
                        // processor's batch loop — one warm edge cache and
                        // one per-engine scratch serve every event.
                        proc.process_batch_into(events.iter(), &mut sink);
                    }
                }
                emitted += out.len() as u64;
                if !out.is_empty() {
                    // A full aggregation channel blocks here, which in turn
                    // fills this worker's input channel and stalls ingest:
                    // backpressure reaches the producer with bounded memory.
                    if match_tx.send((idx, out)).is_err() {
                        return; // facade dropped the receiver: shut down
                    }
                }
            }
            WorkerMsg::Metrics {
                pipeline,
                queue_depth,
                sojourn,
            } => {
                proc.set_metrics(Some(pipeline));
                telemetry = Some((queue_depth, sojourn));
            }
            WorkerMsg::Register { global, engine } => {
                let local = proc.register_engine(*engine);
                to_global.insert(local, global);
                to_local.insert(global, local);
                if let Some(window) = retention_override {
                    proc.set_graph_retention(window);
                }
            }
            WorkerMsg::Deregister { global, reply } => {
                let engine = to_local.remove(&global).and_then(|local| {
                    to_global.remove(&local);
                    proc.deregister(local)
                });
                if let Some(window) = retention_override {
                    proc.set_graph_retention(window);
                }
                let _ = reply.send(engine.map(Box::new));
            }
            WorkerMsg::SetRetention(window) => {
                retention_override = Some(window);
                proc.set_graph_retention(window);
            }
            WorkerMsg::Redecompose {
                global,
                strategy,
                tree,
            } => {
                // A deregistration racing ahead of the facade's drift check
                // cannot happen (control messages are FIFO per worker), but
                // an unknown id is still tolerated as a no-op. A failing
                // rebuild (e.g. a hand-built tree beyond the lazy-bitmap
                // cap that slipped past the facade's guard) keeps the old
                // plan rather than poisoning the worker thread — mirroring
                // the sequential processor, which skips such plans too.
                if let Some(&local) = to_local.get(&global) {
                    let _ = proc.redecompose(local, strategy, *tree);
                }
            }
            WorkerMsg::Report { reply } => {
                let mut per_query: Vec<(QueryId, ProfileCounters)> = to_local
                    .iter()
                    .filter_map(|(&global, &local)| {
                        proc.profile_for(local).map(|p| (global, p.clone()))
                    })
                    .collect();
                per_query.sort_by_key(|&(id, _)| id);
                let stream = proc.profile();
                let _ = reply.send(WorkerReport {
                    worker: idx,
                    per_query,
                    edges_ingested: stream.edges_processed,
                    vertex_type_conflicts: stream.vertex_type_conflicts,
                    matches_found: emitted,
                    graph_edges_live: proc.graph().num_edges(),
                    stored_matches: proc.stored_matches(),
                });
            }
            WorkerMsg::Drain { reply } => {
                let _ = reply.send(DrainAck {
                    matches_emitted: emitted,
                });
            }
            WorkerMsg::Shutdown => return,
        }
    }
}
