//! Tunables of the parallel runtime.

use streampattern::DriftConfig;

/// Configuration of a [`ParallelStreamProcessor`](crate::ParallelStreamProcessor).
///
/// The defaults are sized for a laptop-class machine: enough batching to
/// amortize channel traffic, channels bounded tightly enough that a stalled
/// worker (or a slow match consumer) pushes backpressure all the way to the
/// ingest loop instead of buffering the stream in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of worker threads (shards). Clamped to at least 1.
    pub workers: usize,
    /// Number of stream events per ingest batch. Each batch is broadcast to
    /// every worker as one `Arc`'d message.
    pub batch_size: usize,
    /// Capacity, in batches, of each worker's bounded input channel. When a
    /// worker falls this many batches behind, the ingest loop blocks
    /// (backpressure) instead of queueing more.
    pub channel_capacity: usize,
    /// Capacity, in match batches, of the shared aggregation channel workers
    /// report matches through. A slow match consumer eventually blocks the
    /// workers, which in turn blocks ingest — memory stays bounded end to
    /// end.
    pub match_capacity: usize,
    /// Edges between partial-match purges in each worker's processor
    /// (mirrors `StreamProcessor`'s purge interval).
    pub purge_interval: u64,
    /// Maintain live stream statistics on the ingest path (feeds
    /// `StrategySpec::Auto` registration, exactly like the sequential
    /// processor's default). Disable for measurement parity with the paper's
    /// prefix-statistics methodology.
    pub collect_statistics: bool,
    /// When `true`, a worker skips ingesting edges whose type is absent from
    /// its local dispatch index entirely (they are not even added to the
    /// shard's graph replica). This shards the graph as well as the engine
    /// work and is substantially faster, but it assumes queries are
    /// registered before the stream starts (late registrations will not see
    /// skipped history) and that the stream has no vertex-type conflicts
    /// (conflict resolution becomes shard-local). Match sets for
    /// pre-registered queries are unaffected: a match can only use edges
    /// whose types occur in its query.
    pub ingest_filter: bool,
    /// Whether each worker's partial-match stores intern matches as
    /// fixed-width arena rows (default) or keep materialized buckets —
    /// applied to the worker's `StreamProcessor` replica at spawn, mirroring
    /// the sequential processor's `with_match_interning`. Note the metering
    /// line: interning covers *storage and joining*; matches crossing the
    /// aggregation channel to the facade are always materialized
    /// `SubgraphMatch` values (the copy-on-emit boundary), so channel
    /// payloads are representation-independent.
    pub match_interning: bool,
    /// Drift-adaptive re-decomposition (`None` = off). When set, the facade
    /// checks every registered query's drift detector against the
    /// ingest-path statistics every `check_interval` edges and, on a
    /// confirmed plan change, broadcasts a `Redecompose` control message
    /// down the owning worker's FIFO channel — the swap lands at a
    /// deterministic point between batches and replays the worker's
    /// retained graph, so the reported match multiset is unchanged.
    /// Requires `collect_statistics`; with statistics off the detectors
    /// never see movement.
    pub adaptive: Option<DriftConfig>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            batch_size: 256,
            channel_capacity: 32,
            match_capacity: 1024,
            purge_interval: 4096,
            collect_statistics: true,
            ingest_filter: false,
            match_interning: true,
            adaptive: None,
        }
    }
}

impl RuntimeConfig {
    /// Default configuration with the given worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Sets the ingest batch size (clamped to at least 1).
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Sets each worker's input channel capacity in batches (clamped to at
    /// least 1).
    pub fn channel_capacity(mut self, cap: usize) -> Self {
        self.channel_capacity = cap.max(1);
        self
    }

    /// Sets the aggregation channel capacity in match batches (clamped to at
    /// least 1).
    pub fn match_capacity(mut self, cap: usize) -> Self {
        self.match_capacity = cap.max(1);
        self
    }

    /// Sets the per-worker purge interval (clamped to at least 1).
    pub fn purge_interval(mut self, interval: u64) -> Self {
        self.purge_interval = interval.max(1);
        self
    }

    /// Enables or disables live stream-statistics collection on the ingest
    /// path.
    pub fn statistics(mut self, enabled: bool) -> Self {
        self.collect_statistics = enabled;
        self
    }

    /// Enables or disables shard-local ingest filtering (see
    /// [`RuntimeConfig::ingest_filter`] for the trade-off).
    pub fn ingest_filtering(mut self, enabled: bool) -> Self {
        self.ingest_filter = enabled;
        self
    }

    /// Enables or disables interned match storage in every worker replica
    /// (see [`RuntimeConfig::match_interning`]).
    pub fn match_interning(mut self, enabled: bool) -> Self {
        self.match_interning = enabled;
        self
    }

    /// Enables drift-adaptive re-decomposition with the given detector
    /// configuration (see [`RuntimeConfig::adaptive`]).
    pub fn adaptive(mut self, config: DriftConfig) -> Self {
        self.adaptive = Some(config);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = RuntimeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.batch_size >= 1);
        assert!(c.channel_capacity >= 1);
        assert!(c.match_capacity >= 1);
        assert!(c.collect_statistics);
        assert!(!c.ingest_filter);
    }

    #[test]
    fn builders_clamp_to_minimums() {
        let c = RuntimeConfig::with_workers(0)
            .batch_size(0)
            .channel_capacity(0)
            .match_capacity(0)
            .purge_interval(0);
        assert_eq!(c.workers, 1);
        assert_eq!(c.batch_size, 1);
        assert_eq!(c.channel_capacity, 1);
        assert_eq!(c.match_capacity, 1);
        assert_eq!(c.purge_interval, 1);
    }
}
