//! # sp-runtime — parallel sharded multi-query runtime
//!
//! The sequential [`StreamProcessor`](streampattern::StreamProcessor)
//! dispatches every edge on one core. This crate scales the same multi-query
//! semantics across threads, the way the paper's deployment story
//! (StreamWorks) frames production rates: **query-parallel scale-out**.
//!
//! ```text
//!              caller thread = ingest: batch + broadcast
//!  events ──► [e,e,e,…] ──┬──► bounded ch ──► worker 0: graph replica ──┐
//!   (stats → estimator)   ├──► bounded ch ──► worker 1: shard of       ─┤──► MPSC
//!                         └──► bounded ch ──► worker N: registry       ─┘  aggregation
//!                                                                          (QueryId, match)
//! ```
//!
//! * Queries are assigned to shards greedily by estimated cost
//!   ([`SelectivityEstimator::estimate_query_cost`](sp_selectivity::SelectivityEstimator::estimate_query_cost)),
//!   so shards balance by *work*, not by query count.
//! * Every channel is bounded: a worker that falls behind fills its input
//!   channel and blocks the ingest loop; a slow match consumer fills the
//!   aggregation channel and blocks the workers. Memory stays bounded end
//!   to end, and the backpressure is observable via
//!   [`RuntimeStats::backpressure_events`].
//! * Control messages (register / deregister / drain / report) share the
//!   per-worker FIFO channels with the edge batches, so a query registered
//!   mid-stream sees exactly the stream suffix a sequential processor would
//!   — parallel and sequential execution produce **identical match
//!   multisets** for any worker count (asserted by the integration tests).
//!
//! ## Quick start
//!
//! ```
//! use sp_graph::{EdgeEvent, Schema, Timestamp};
//! use sp_query::QueryGraph;
//! use sp_runtime::{ParallelStreamProcessor, RuntimeConfig};
//! use streampattern::Strategy;
//!
//! let mut schema = Schema::new();
//! let ip = schema.intern_vertex_type("ip");
//! let tcp = schema.intern_edge_type("tcp");
//! let esp = schema.intern_edge_type("esp");
//!
//! let mut runtime = ParallelStreamProcessor::new(schema, RuntimeConfig::with_workers(2));
//! let mut tunnel = QueryGraph::new("esp-then-tcp");
//! let x = tunnel.add_any_vertex();
//! let y = tunnel.add_any_vertex();
//! let z = tunnel.add_any_vertex();
//! tunnel.add_edge(x, y, esp);
//! tunnel.add_edge(y, z, tcp);
//! let id = runtime.register(tunnel, Strategy::SingleLazy, Some(100)).unwrap();
//!
//! let events = [
//!     EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1)),
//!     EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(2)),
//! ];
//! assert_eq!(runtime.process_all(events.iter()), 1);
//! assert_eq!(runtime.profile_for(id).unwrap().complete_matches, 1);
//! let report = runtime.shutdown();
//! assert_eq!(report.total_matches, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod processor;
mod worker;

pub use config::RuntimeConfig;
pub use processor::{ParallelStreamProcessor, RuntimeReport, RuntimeStats};
pub use worker::WorkerReport;

// Re-export the pieces callers need alongside the runtime.
pub use sp_metrics::MetricsRegistry;
pub use streampattern::{
    ContinuousQueryEngine, MatchSink, PipelineMetrics, ProfileCounters, QueryId, Strategy,
    StrategySpec,
};
