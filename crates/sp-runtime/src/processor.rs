//! The parallel facade: mirrors the sequential [`StreamProcessor`] API on
//! top of N sharded worker threads.

use crate::config::RuntimeConfig;
use crate::worker::{worker_loop, DrainAck, MatchBatch, WorkerMsg, WorkerReport};
use sp_graph::{monotonic_nanos, EdgeData, EdgeEvent, EdgeId, Schema, VertexId};
use sp_iso::SubgraphMatch;
use sp_metrics::{Counter, Gauge, MetricsRegistry};
use sp_query::QueryEdgeId;
use sp_query::QueryGraph;
use sp_selectivity::SelectivityEstimator;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use streampattern::{
    canonicalize_subgraph, choose_strategy, leaf_structure, retention_for_windows, tree_chain,
    AdaptiveStats, CollectSink, ContinuousQueryEngine, CountSink, EngineError, LeafSignature,
    MatchSink, PipelineMetrics, PrefixSignature, ProfileCounters, QueryDriftState, QueryId,
    Strategy, StrategySpec, MIN_PREFIX_DEPTH, RELATIVE_SELECTIVITY_THRESHOLD,
};

/// How long a control wait sleeps on the aggregation channel before
/// re-checking its reply channel. Small enough to stay responsive, large
/// enough not to spin.
const CONTROL_POLL: Duration = Duration::from_micros(50);

/// How much of a query's estimated cost is forgiven on a shard that already
/// hosts (some of) its canonical leaf shapes: each worker's registry runs
/// shared-leaf evaluation, so a co-located sharer pays only the join stage
/// for the overlapping leaves. 1.0 would assume leaf search is the entire
/// cost; 0.5 keeps the assignment balanced when the join stage dominates.
const SHARING_COST_DISCOUNT: f64 = 0.5;

/// Observable counters of the runtime itself (as opposed to the query
/// engines' [`ProfileCounters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Ingest batches broadcast so far (one count per batch, not per worker
    /// copy).
    pub batches_sent: u64,
    /// Times the ingest loop found a worker's bounded input channel full and
    /// had to wait — the backpressure signal. A sustained non-zero rate
    /// means the workers (or the match consumer) are the bottleneck.
    pub backpressure_events: u64,
    /// Match batches received from the aggregation channel.
    pub match_batches_received: u64,
}

/// Final report returned by [`ParallelStreamProcessor::shutdown`].
#[derive(Debug)]
pub struct RuntimeReport {
    /// Aggregated profiling counters (see
    /// [`ParallelStreamProcessor::profile`] for the aggregation rules).
    pub profile: ProfileCounters,
    /// Per-worker snapshots, in shard order.
    pub workers: Vec<WorkerReport>,
    /// Runtime counters.
    pub stats: RuntimeStats,
    /// Total matches found over the runtime's lifetime.
    pub total_matches: u64,
    /// Matches that were drained but never handed to a caller's sink (e.g.
    /// matches produced right before shutdown with no intervening
    /// `process_all_into`).
    pub pending_matches: Vec<(QueryId, SubgraphMatch)>,
}

struct WorkerHandle {
    tx: SyncSender<WorkerMsg>,
    join: Option<JoinHandle<()>>,
}

/// Facade-side telemetry handles, live only when
/// [`ParallelStreamProcessor::enable_metrics`] has been called. The worker
/// replicas hold their own handles (shipped via [`WorkerMsg::Metrics`]); all
/// of them write into the same registry, so a snapshot aggregates the whole
/// runtime.
struct RuntimeMetrics {
    /// `runtime.backpressure_stalls_total` — mirrors
    /// [`RuntimeStats::backpressure_events`], but readable live from any
    /// thread holding the registry.
    backpressure: Counter,
    /// `runtime.batches_sent_total` — mirrors [`RuntimeStats::batches_sent`].
    batches: Counter,
    /// `runtime.queue_depth.w{i}` — batches enqueued on worker *i*'s input
    /// channel and not yet dequeued (facade increments on send, worker
    /// decrements on receive).
    queue_depth: Vec<Gauge>,
}

/// One query's drift bookkeeping on the facade: the detector plus the
/// facade's mirror of the plan currently live on the owning worker (the
/// engine itself is on the worker thread, so the facade tracks strategy and
/// leaf structure to compare re-plans against).
struct FacadeQueryDrift {
    state: QueryDriftState,
    query: QueryGraph,
    strategy: Strategy,
    leaves: Vec<Vec<QueryEdgeId>>,
}

/// Facade-level adaptivity: per-query drift states plus the shared check
/// cadence over ingested edges.
struct FacadeAdaptive {
    config: streampattern::DriftConfig,
    last_check_at: u64,
    per_query: HashMap<QueryId, FacadeQueryDrift>,
    stats: AdaptiveStats,
}

#[derive(Debug, Clone)]
struct ShardAssignment {
    worker: usize,
    cost: f64,
    /// The query's canonical leaf shapes, kept to release the shard's
    /// residency refcounts at deregistration.
    sigs: Vec<LeafSignature>,
    /// The query's canonical decomposition chain (`None` for VF2 /
    /// single-leaf trees), kept to release the shard's prefix refcounts.
    chain: Option<PrefixSignature>,
}

/// A parallel, sharded multi-query stream processor.
///
/// `ParallelStreamProcessor` mirrors the sequential
/// [`StreamProcessor`](streampattern::StreamProcessor) API —
/// [`register`](Self::register) / [`deregister`](Self::deregister) /
/// [`process_all`](Self::process_all) / [`profile`](Self::profile) — but
/// executes the registered queries on `N` worker threads:
///
/// * every query is assigned to one worker shard, chosen greedily by the
///   selectivity-based cost estimate
///   ([`SelectivityEstimator::estimate_query_cost`]) so shards stay
///   balanced;
/// * the calling thread is the ingest thread: it batches events and
///   broadcasts each batch over a bounded channel per worker, blocking when
///   a worker falls behind (backpressure);
/// * each worker owns a full windowed graph replica plus its shard of the
///   registry, and its local edge-type dispatch index skips engines exactly
///   as the sequential processor would;
/// * complete matches flow back through one bounded MPSC aggregation
///   channel, tagged `(QueryId, SubgraphMatch)`; per-worker emission order
///   is preserved, interleaving across workers is arbitrary.
///
/// Because control messages share the per-worker FIFO channels with the
/// edge batches, a query registered between two `process_all` calls
/// observes exactly the stream suffix a sequential processor would — the
/// equivalence tests assert identical match multisets for 1, 2 and 4
/// workers.
pub struct ParallelStreamProcessor {
    config: RuntimeConfig,
    estimator: SelectivityEstimator,
    workers: Vec<WorkerHandle>,
    match_rx: Receiver<MatchBatch>,
    assignments: HashMap<QueryId, ShardAssignment>,
    windows: HashMap<QueryId, Option<u64>>,
    shard_costs: Vec<f64>,
    /// Per-shard refcounts of resident canonical leaf shapes, mirroring what
    /// each worker's `SharedLeafIndex` holds; drives sharing-aware
    /// assignment.
    shard_sigs: Vec<HashMap<LeafSignature, usize>>,
    /// Per-shard refcounts of resident canonical chain **trie paths**: every
    /// prefix truncation (depth [`MIN_PREFIX_DEPTH`]..=chain depth) of each
    /// registered chain counts as one resident trie-path node, mirroring
    /// the node set the worker's `SharedJoinIndex` trie can materialize. A
    /// new query is discounted on shards whose resident paths cover a
    /// prefix of its own chain (the worker registry will share — or nest
    /// under — the join tables along that path).
    shard_chains: Vec<HashMap<PrefixSignature, usize>>,
    adaptive: Option<FacadeAdaptive>,
    next_id: u64,
    retention: Option<u64>,
    events_ingested: u64,
    matches_received: u64,
    total_matches: u64,
    buffered: VecDeque<(QueryId, SubgraphMatch)>,
    stats: RuntimeStats,
    metrics: Option<RuntimeMetrics>,
}

impl ParallelStreamProcessor {
    /// Spawns the worker threads and returns an empty runtime (no registered
    /// queries). Until a query is registered, processed edges only grow the
    /// worker replicas.
    pub fn new(schema: Schema, config: RuntimeConfig) -> Self {
        let config = RuntimeConfig {
            workers: config.workers.max(1),
            batch_size: config.batch_size.max(1),
            channel_capacity: config.channel_capacity.max(1),
            match_capacity: config.match_capacity.max(1),
            purge_interval: config.purge_interval.max(1),
            ..config
        };
        let (match_tx, match_rx) = sync_channel::<MatchBatch>(config.match_capacity);
        let mut workers = Vec::with_capacity(config.workers);
        for idx in 0..config.workers {
            let (tx, rx) = sync_channel::<WorkerMsg>(config.channel_capacity);
            let schema = schema.clone();
            let match_tx = match_tx.clone();
            let join = std::thread::Builder::new()
                .name(format!("sp-worker-{idx}"))
                .spawn(move || worker_loop(idx, schema, config, rx, match_tx))
                .expect("spawn worker thread");
            workers.push(WorkerHandle {
                tx,
                join: Some(join),
            });
        }
        let shard_costs = vec![0.0; config.workers];
        let shard_sigs = vec![HashMap::new(); config.workers];
        let shard_chains = vec![HashMap::new(); config.workers];
        let adaptive = config.adaptive.map(|cfg| FacadeAdaptive {
            config: cfg,
            last_check_at: 0,
            per_query: HashMap::new(),
            stats: AdaptiveStats::default(),
        });
        Self {
            config,
            estimator: SelectivityEstimator::new(),
            workers,
            match_rx,
            assignments: HashMap::new(),
            windows: HashMap::new(),
            shard_costs,
            shard_sigs,
            shard_chains,
            adaptive,
            next_id: 0,
            retention: None,
            events_ingested: 0,
            matches_received: 0,
            total_matches: 0,
            buffered: VecDeque::new(),
            stats: RuntimeStats::default(),
            metrics: None,
        }
    }

    /// Attaches a [`MetricsRegistry`] to the runtime. Registers the
    /// facade-level series (`runtime.backpressure_stalls_total`,
    /// `runtime.batches_sent_total`, one `runtime.queue_depth.w{i}` gauge per
    /// worker, `runtime.batch_sojourn_ns`) plus one shared
    /// [`PipelineMetrics`] bundle whose handles are shipped to every worker
    /// replica — the per-stage counters therefore aggregate over all shards,
    /// and `stream.edges_total` counts **replica ingests** (events × workers,
    /// minus ingest-filtered events). From this point on the facade also
    /// stamps every event's [`arrival_ns`](sp_graph::EdgeEvent::arrival_ns)
    /// at ingest, so `match.latency_ns` measures detection latency including
    /// the channel queueing delay.
    ///
    /// Metrics attach via the FIFO worker channels: batches already in
    /// flight stay unmetered, everything sent afterwards is metered. Calling
    /// this more than once re-registers the same names (idempotent in the
    /// registry) and re-ships handles.
    pub fn enable_metrics(&mut self, registry: &MetricsRegistry) {
        let pipeline = PipelineMetrics::register(registry);
        let sojourn = registry.histogram("runtime.batch_sojourn_ns");
        let queue_depth: Vec<Gauge> = (0..self.workers.len())
            .map(|w| registry.gauge(&format!("runtime.queue_depth.w{w}")))
            .collect();
        for (w, gauge) in queue_depth.iter().enumerate() {
            self.send_to_worker(
                w,
                WorkerMsg::Metrics {
                    pipeline: pipeline.clone(),
                    queue_depth: gauge.clone(),
                    sojourn: sojourn.clone(),
                },
            );
        }
        self.metrics = Some(RuntimeMetrics {
            backpressure: registry.counter("runtime.backpressure_stalls_total"),
            batches: registry.counter("runtime.batches_sent_total"),
            queue_depth,
        });
    }

    /// Builder-style variant of [`enable_metrics`](Self::enable_metrics).
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.enable_metrics(registry);
        self
    }

    /// Seeds the runtime's stream statistics (e.g. from
    /// `Dataset::estimator_from_prefix`). Subsequent edges keep updating the
    /// estimator unless statistics collection is disabled in the
    /// [`RuntimeConfig`].
    pub fn with_estimator(mut self, estimator: SelectivityEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Number of worker shards.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Runtime counters (batches, backpressure events).
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// The stream statistics collected so far on the ingest path.
    pub fn estimator(&self) -> &SelectivityEstimator {
        &self.estimator
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.assignments.len()
    }

    /// Ids of the registered queries, in ascending id (= registration)
    /// order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self.assignments.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The worker shard a query is assigned to.
    pub fn shard_of(&self, id: QueryId) -> Option<usize> {
        self.assignments.get(&id).map(|a| a.worker)
    }

    /// The current estimated cost load of every shard, in shard order.
    pub fn shard_costs(&self) -> &[f64] {
        &self.shard_costs
    }

    /// Number of distinct canonical leaf shapes resident on a shard (the
    /// facade's mirror of the worker registry's shared-leaf index), used to
    /// observe sharing-aware placement.
    pub fn shard_resident_leaves(&self, worker: usize) -> usize {
        self.shard_sigs.get(worker).map(HashMap::len).unwrap_or(0)
    }

    /// Number of distinct canonical chain trie-path nodes resident on a
    /// shard — every prefix truncation of every registered chain counts
    /// once (the facade's mirror of the node set the worker registry's
    /// shared-join trie can materialize), used to observe
    /// prefix-sharing-aware placement. A shard hosting only depth-2 chains
    /// reports one node per distinct chain; a depth-3 chain contributes its
    /// depth-2 and depth-3 paths.
    pub fn shard_resident_chains(&self, worker: usize) -> usize {
        self.shard_chains.get(worker).map(HashMap::len).unwrap_or(0)
    }

    /// Refcounts every trie-path node of `chain` on `worker` — the
    /// registration half of the facade's shared-join mirror.
    fn add_chain_paths(&mut self, worker: usize, chain: &PrefixSignature) {
        for d in MIN_PREFIX_DEPTH..=chain.depth() {
            *self.shard_chains[worker]
                .entry(chain.truncated(d))
                .or_insert(0) += 1;
        }
    }

    /// Releases every trie-path node of `chain` on `worker`, dropping nodes
    /// whose refcount reaches zero.
    fn remove_chain_paths(&mut self, worker: usize, chain: &PrefixSignature) {
        for d in MIN_PREFIX_DEPTH..=chain.depth() {
            let sig = chain.truncated(d);
            if let Some(count) = self.shard_chains[worker].get_mut(&sig) {
                *count -= 1;
                if *count == 0 {
                    self.shard_chains[worker].remove(&sig);
                }
            }
        }
    }

    /// Registers a continuous query, mirroring
    /// [`StreamProcessor::register`](streampattern::StreamProcessor::register):
    /// the strategy is fixed or chosen by the Relative Selectivity rule
    /// against the ingest-path statistics, and the query is assigned to the
    /// least-loaded shard by estimated cost.
    pub fn register(
        &mut self,
        query: QueryGraph,
        spec: impl Into<StrategySpec>,
        window: Option<u64>,
    ) -> Result<QueryId, EngineError> {
        let spec = spec.into();
        let strategy = match spec {
            StrategySpec::Fixed(s) => s,
            StrategySpec::Auto => {
                choose_strategy(&query, &self.estimator, RELATIVE_SELECTIVITY_THRESHOLD)?.strategy
            }
        };
        let engine = ContinuousQueryEngine::new(query, strategy, &self.estimator, window)?;
        Ok(self.register_engine_with_spec(engine, spec))
    }

    /// Registers a pre-built engine (custom decompositions, replayed trees)
    /// on the best shard by *sharing-aware* cost: the query's estimated cost
    /// is discounted on shards that already host its canonical leaf shapes
    /// (each worker's registry deduplicates leaf searches, so a co-located
    /// sharer is cheaper there), and the query goes to the shard minimizing
    /// `load + discounted cost`. With no overlap anywhere this reduces to
    /// the plain least-loaded assignment.
    ///
    /// Under adaptivity ([`crate::RuntimeConfig::adaptive`]) the engine's
    /// current strategy is treated as a `Fixed` registration, mirroring the
    /// sequential processor: drift may re-order its leaves but never change
    /// the strategy.
    pub fn register_engine(&mut self, engine: ContinuousQueryEngine) -> QueryId {
        let spec = StrategySpec::Fixed(engine.strategy());
        self.register_engine_with_spec(engine, spec)
    }

    fn register_engine_with_spec(
        &mut self,
        engine: ContinuousQueryEngine,
        spec: StrategySpec,
    ) -> QueryId {
        // Cost floor keeps a shard from absorbing unbounded many "free"
        // queries: even a never-dispatched query costs registry space.
        let base_cost = self.estimator.estimate_query_cost(engine.query()).max(1e-6);
        let sigs: Vec<LeafSignature> = engine
            .tree()
            .map(|tree| {
                tree.leaf_subgraphs()
                    .filter_map(|sg| canonicalize_subgraph(tree.query(), sg).map(|(sig, _)| sig))
                    .collect()
            })
            .unwrap_or_default();
        let chain = engine.tree().and_then(tree_chain);
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let mut worker = 0;
        let mut cost = base_cost;
        let mut best_total = f64::INFINITY;
        for (w, &load) in self.shard_costs.iter().enumerate() {
            // A shard whose resident trie paths cover a prefix of this
            // chain will share the join tables along that path, not just
            // the leaf searches: the discount counts the covered prefix's
            // internal join nodes on top of the resident leaves. Resident
            // depths feed the trie-aware estimator as a set — nesting
            // paths are one storage, never double-counted.
            let resident_depths: Vec<usize> = chain
                .as_ref()
                .map(|c| {
                    (MIN_PREFIX_DEPTH..=c.depth())
                        .filter(|&d| self.shard_chains[w].contains_key(&c.truncated(d)))
                        .collect()
                })
                .unwrap_or_default();
            let benefit = self.estimator.estimate_sharing_benefit_with_prefixes(
                sigs.iter(),
                |sig| self.shard_sigs[w].contains_key(sig),
                resident_depths.iter().copied(),
            );
            let discounted = base_cost * (1.0 - SHARING_COST_DISCOUNT * benefit);
            let total = load + discounted;
            if total < best_total {
                best_total = total;
                worker = w;
                cost = discounted;
            }
        }
        self.shard_costs[worker] += cost;
        for sig in &sigs {
            *self.shard_sigs[worker].entry(sig.clone()).or_insert(0) += 1;
        }
        if let Some(chain) = chain.clone() {
            self.add_chain_paths(worker, &chain);
        }
        self.windows.insert(id, engine.window());
        self.assignments.insert(
            id,
            ShardAssignment {
                worker,
                cost,
                sigs,
                chain,
            },
        );
        if let Some(adaptive) = self.adaptive.as_mut() {
            if let Some(tree) = engine.tree() {
                adaptive.per_query.insert(
                    id,
                    FacadeQueryDrift {
                        state: QueryDriftState::new(
                            adaptive.config,
                            engine.query(),
                            spec,
                            &self.estimator,
                        ),
                        query: engine.query().clone(),
                        strategy: engine.strategy(),
                        leaves: leaf_structure(tree),
                    },
                );
            }
        }
        self.send_to_worker(
            worker,
            WorkerMsg::Register {
                global: id,
                engine: Box::new(engine),
            },
        );
        self.broadcast_retention();
        id
    }

    /// Deregisters a query, returning its engine with runtime state intact.
    /// The owning worker removes it after finishing every batch sent before
    /// this call, so no in-flight event is lost or double-processed.
    pub fn deregister(&mut self, id: QueryId) -> Option<ContinuousQueryEngine> {
        let assignment = self.assignments.remove(&id)?;
        self.windows.remove(&id);
        if let Some(adaptive) = self.adaptive.as_mut() {
            adaptive.per_query.remove(&id);
        }
        self.shard_costs[assignment.worker] =
            (self.shard_costs[assignment.worker] - assignment.cost).max(0.0);
        for sig in &assignment.sigs {
            if let Some(count) = self.shard_sigs[assignment.worker].get_mut(sig) {
                *count -= 1;
                if *count == 0 {
                    self.shard_sigs[assignment.worker].remove(sig);
                }
            }
        }
        if let Some(chain) = assignment.chain.clone() {
            self.remove_chain_paths(assignment.worker, &chain);
        }
        let (reply_tx, reply_rx) = channel();
        self.send_to_worker(
            assignment.worker,
            WorkerMsg::Deregister {
                global: id,
                reply: reply_tx,
            },
        );
        let engine = self.recv_reply(&reply_rx).map(|boxed| *boxed);
        if !self.assignments.is_empty() {
            self.broadcast_retention();
        }
        engine
    }

    /// Ingests a whole stream: batches the events, broadcasts each batch to
    /// every worker, forwards every match into `sink`, and drains the
    /// pipeline before returning. Returns the number of matches delivered
    /// to `sink` by this call.
    pub fn process_all_into<'a, I, S>(&mut self, events: I, sink: &mut S) -> u64
    where
        I: IntoIterator<Item = &'a EdgeEvent>,
        S: MatchSink + ?Sized,
    {
        let mut delivered = self.flush_buffered(sink);
        let mut batch: Vec<EdgeEvent> = Vec::with_capacity(self.config.batch_size);
        for ev in events {
            if self.config.collect_statistics {
                self.estimator.observe_edge(&EdgeData {
                    id: EdgeId(self.events_ingested),
                    src: VertexId(ev.src),
                    dst: VertexId(ev.dst),
                    edge_type: ev.edge_type,
                    timestamp: ev.timestamp,
                });
            }
            self.events_ingested += 1;
            // With metrics attached the ingest instant rides on the event so
            // workers can measure detection latency from arrival, not from
            // dequeue. One clock read per event, only when metrics are on.
            batch.push(if self.metrics.is_some() {
                ev.stamped_now()
            } else {
                *ev
            });
            if batch.len() >= self.config.batch_size {
                self.broadcast(std::mem::take(&mut batch));
                batch = Vec::with_capacity(self.config.batch_size);
                delivered += self.flush_buffered(sink);
                self.maybe_check_drift();
            }
        }
        if !batch.is_empty() {
            self.broadcast(batch);
            self.maybe_check_drift();
        }
        delivered + self.drain_into(sink)
    }

    /// Ingests a whole stream and returns the total number of matches found,
    /// mirroring [`StreamProcessor::process_all`](streampattern::StreamProcessor::process_all).
    pub fn process_all<'a, I>(&mut self, events: I) -> u64
    where
        I: IntoIterator<Item = &'a EdgeEvent>,
    {
        let mut sink = CountSink::new();
        self.process_all_into(events, &mut sink);
        sink.matches
    }

    /// Ingests one event and returns the matches it created. This drains the
    /// whole pipeline (a full barrier) per event — it mirrors
    /// [`StreamProcessor::process`](streampattern::StreamProcessor::process)
    /// for convenience and tests, but high-throughput callers should use
    /// [`process_all_into`](Self::process_all_into).
    pub fn process(&mut self, event: &EdgeEvent) -> Vec<(QueryId, SubgraphMatch)> {
        let mut sink = CollectSink::new();
        self.process_all_into(std::iter::once(event), &mut sink);
        sink.into_matches()
    }

    /// Barrier: waits until every worker has processed every batch sent so
    /// far, forwarding all resulting matches into `sink`. Returns the number
    /// of matches delivered by this call.
    pub fn drain_into<S: MatchSink + ?Sized>(&mut self, sink: &mut S) -> u64 {
        self.drain();
        self.flush_buffered(sink)
    }

    /// Barrier variant that buffers the drained matches internally (they are
    /// delivered to the next sink-taking call, or via
    /// [`take_pending_matches`](Self::take_pending_matches)).
    pub fn drain(&mut self) {
        let target = self.drain_barrier();
        while self.matches_received < target {
            match self.match_rx.recv() {
                Ok(batch) => self.buffer_match_batch(batch),
                Err(_) => panic!("a worker thread terminated unexpectedly"),
            }
        }
    }

    /// Matches drained during control operations (register, deregister,
    /// profile, drain) that no sink has consumed yet.
    pub fn take_pending_matches(&mut self) -> Vec<(QueryId, SubgraphMatch)> {
        self.buffered.drain(..).collect()
    }

    /// Total matches found since construction, across all queries. Drains
    /// the pipeline to make the count exact.
    pub fn total_matches(&mut self) -> u64 {
        self.drain();
        self.total_matches
    }

    /// Aggregated profiling counters across all shards (drains the pipeline
    /// first): every query's engine counters merged via
    /// [`ProfileCounters::merge`], with `edges_processed` reporting events
    /// ingested by the runtime and `vertex_type_conflicts` taken from the
    /// replica that saw the most (replicas are identical unless ingest
    /// filtering is on).
    pub fn profile(&mut self) -> ProfileCounters {
        let reports = self.worker_reports();
        self.merge_reports(&reports)
    }

    /// Total partial matches ever stored across every worker replica's
    /// match stores (drains the pipeline first) — the runtime's
    /// `alloc.allocs_per_match` denominator. Replicas store independently,
    /// so this grows with the worker count even though the reported match
    /// multiset does not.
    pub fn stored_matches(&mut self) -> u64 {
        self.worker_reports().iter().map(|r| r.stored_matches).sum()
    }

    /// Profiling counters of one query's engine (a snapshot; drains the
    /// pipeline first).
    pub fn profile_for(&mut self, id: QueryId) -> Option<ProfileCounters> {
        let worker = self.assignments.get(&id)?.worker;
        self.drain();
        let report = self.report_worker(worker);
        report
            .per_query
            .into_iter()
            .find(|&(q, _)| q == id)
            .map(|(_, p)| p)
    }

    /// The retention window currently broadcast to every graph replica (the
    /// global maximum across registered queries; `None` retains
    /// everything).
    pub fn graph_retention(&self) -> Option<u64> {
        self.retention
    }

    /// Cumulative drift-adaptivity counters (zeroes when
    /// [`crate::RuntimeConfig::adaptive`] is off).
    pub fn adaptive_stats(&self) -> AdaptiveStats {
        self.adaptive.as_ref().map(|a| a.stats).unwrap_or_default()
    }

    /// Runs the drift checks at batch-boundary cadence: once
    /// `check_interval` edges have been ingested since the last check, every
    /// registered query's detector is evaluated against the ingest-path
    /// statistics.
    fn maybe_check_drift(&mut self) {
        let due = match self.adaptive.as_mut() {
            Some(adaptive)
                if self.events_ingested - adaptive.last_check_at
                    >= adaptive.config.check_interval =>
            {
                adaptive.last_check_at = self.events_ingested;
                true
            }
            _ => false,
        };
        if due {
            self.run_drift_checks();
        }
    }

    /// One drift check over every registered query: confirmed plan changes
    /// are shipped to the owning worker as a `Redecompose` control message
    /// (FIFO with the edge batches, so the swap point is deterministic) and
    /// the facade's plan mirror plus sharing-aware shard statistics are
    /// updated. Returns the number of re-decompositions issued. A no-op
    /// when adaptivity is off.
    pub fn run_drift_checks(&mut self) -> usize {
        let Some(mut adaptive) = self.adaptive.take() else {
            return 0;
        };
        let mut issued = 0;
        let ids: Vec<QueryId> = {
            let mut ids: Vec<QueryId> = adaptive.per_query.keys().copied().collect();
            ids.sort_unstable();
            ids
        };
        for id in ids {
            let fqd = adaptive.per_query.get_mut(&id).expect("id from keys");
            adaptive.stats.checks += 1;
            let mut drifted = false;
            let plan = fqd.state.check_plan(
                &fqd.query,
                fqd.strategy,
                &fqd.leaves,
                &self.estimator,
                &mut drifted,
            );
            if drifted {
                adaptive.stats.drifts_detected += 1;
            }
            let Some((strategy, tree)) = plan else {
                continue;
            };
            // Plans the worker's engine could not be rebuilt onto (the
            // lazy-bitmap leaf cap) are dropped here, mirroring the
            // sequential processor's skip; the worker tolerates a failing
            // rebuild too, but there is no point shipping one.
            if tree.num_leaves() > streampattern::MAX_LEAVES {
                continue;
            }
            let Some(assignment) = self.assignments.get_mut(&id) else {
                continue;
            };
            // Refresh the shard's resident-shape refcounts: the old leaves
            // unsubscribe on the worker, the new ones subscribe.
            let worker = assignment.worker;
            let new_sigs: Vec<LeafSignature> = tree
                .leaf_subgraphs()
                .filter_map(|sg| canonicalize_subgraph(tree.query(), sg).map(|(sig, _)| sig))
                .collect();
            for sig in &assignment.sigs {
                if let Some(count) = self.shard_sigs[worker].get_mut(sig) {
                    *count -= 1;
                    if *count == 0 {
                        self.shard_sigs[worker].remove(sig);
                    }
                }
            }
            for sig in &new_sigs {
                *self.shard_sigs[worker].entry(sig.clone()).or_insert(0) += 1;
            }
            assignment.sigs = new_sigs;
            // Trie-path refcounts move with the re-decomposition exactly
            // like the leaf-shape refcounts: the worker's shared join index
            // will drop/recreate trie nodes on its `resubscribe`, and the
            // facade's mirror must follow for future assignments to stay
            // accurate.
            let new_chain = tree_chain(&tree);
            let old_chain = std::mem::replace(&mut assignment.chain, new_chain.clone());
            if let Some(chain) = old_chain {
                self.remove_chain_paths(worker, &chain);
            }
            if let Some(chain) = new_chain {
                self.add_chain_paths(worker, &chain);
            }
            fqd.strategy = strategy;
            fqd.leaves = leaf_structure(&tree);
            adaptive.stats.redecompositions += 1;
            issued += 1;
            self.send_to_worker(
                worker,
                WorkerMsg::Redecompose {
                    global: id,
                    strategy,
                    tree: Box::new(tree),
                },
            );
        }
        self.adaptive = Some(adaptive);
        issued
    }

    /// Merges worker snapshots into one aggregate, the same way
    /// [`StreamProcessor::profile`](streampattern::StreamProcessor::profile)
    /// aggregates its engines: engine counters summed via
    /// [`ProfileCounters::merge`], `edges_processed` reporting events
    /// ingested by the runtime, and `vertex_type_conflicts` taken from the
    /// replica that saw the most.
    fn merge_reports(&self, reports: &[WorkerReport]) -> ProfileCounters {
        let mut total = ProfileCounters::new();
        let mut conflicts = 0;
        for r in reports {
            for (_, p) in &r.per_query {
                total.merge(p);
            }
            conflicts = conflicts.max(r.vertex_type_conflicts);
        }
        total.edges_processed = self.events_ingested;
        total.vertex_type_conflicts = conflicts;
        total
    }

    /// Snapshots of every worker, in shard order (drains the pipeline
    /// first).
    pub fn worker_reports(&mut self) -> Vec<WorkerReport> {
        self.drain();
        (0..self.workers.len())
            .map(|w| self.report_worker(w))
            .collect()
    }

    /// Graceful shutdown: drains the pipeline, collects the final reports,
    /// terminates and joins every worker, and returns the merged report.
    pub fn shutdown(mut self) -> RuntimeReport {
        let workers = self.worker_reports();
        let profile = self.merge_reports(&workers);
        for w in 0..self.workers.len() {
            self.send_to_worker(w, WorkerMsg::Shutdown);
        }
        for handle in &mut self.workers {
            if let Some(join) = handle.join.take() {
                let _ = join.join();
            }
        }
        RuntimeReport {
            profile,
            workers,
            stats: self.stats,
            total_matches: self.total_matches,
            pending_matches: self.buffered.drain(..).collect(),
        }
    }

    // ---- internals ------------------------------------------------------

    /// Sends one message to one worker without deadlocking: when the bounded
    /// input channel is full, the ingest loop drains the aggregation channel
    /// (a blocked worker is usually blocked *on that channel*) and yields
    /// the core to the workers before retrying. Each blocked send counts as
    /// one backpressure event regardless of how long it waits.
    fn send_to_worker(&mut self, worker: usize, msg: WorkerMsg) {
        let mut msg = Some(msg);
        let mut blocked = false;
        loop {
            match self.workers[worker].tx.try_send(msg.take().expect("msg")) {
                Ok(()) => return,
                Err(TrySendError::Full(m)) => {
                    msg = Some(m);
                    if !blocked {
                        blocked = true;
                        self.stats.backpressure_events += 1;
                        if let Some(m) = &self.metrics {
                            m.backpressure.inc();
                        }
                    }
                    if self.drain_pending_matches() == 0 {
                        // Nothing to drain: the worker is compute-bound, not
                        // blocked on the aggregation channel. Sleep-wait on
                        // that channel instead of spinning — a match arrival
                        // wakes us immediately, and otherwise we hand the
                        // core to the workers for CONTROL_POLL.
                        self.drain_one_match_batch();
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    panic!("worker {worker} terminated unexpectedly")
                }
            }
        }
    }

    /// Broadcasts one batch to every worker.
    fn broadcast(&mut self, batch: Vec<EdgeEvent>) {
        let shared = Arc::new(batch);
        let sent_ns = if self.metrics.is_some() {
            monotonic_nanos()
        } else {
            0
        };
        for w in 0..self.workers.len() {
            if let Some(m) = &self.metrics {
                m.queue_depth[w].add(1);
            }
            self.send_to_worker(
                w,
                WorkerMsg::Batch {
                    events: shared.clone(),
                    sent_ns,
                },
            );
        }
        self.stats.batches_sent += 1;
        if let Some(m) = &self.metrics {
            m.batches.inc();
        }
    }

    /// Receives one control reply, draining the aggregation channel while
    /// waiting so a blocked worker can make progress toward replying.
    fn recv_reply<T>(&mut self, rx: &Receiver<T>) -> T {
        loop {
            match rx.recv_timeout(CONTROL_POLL) {
                Ok(v) => return v,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    self.drain_pending_matches();
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("a worker thread terminated unexpectedly")
                }
            }
        }
    }

    /// Sends the drain barrier to every worker and returns the cumulative
    /// match target to wait for.
    fn drain_barrier(&mut self) -> u64 {
        let mut replies = Vec::with_capacity(self.workers.len());
        for w in 0..self.workers.len() {
            let (tx, rx) = channel();
            self.send_to_worker(w, WorkerMsg::Drain { reply: tx });
            replies.push(rx);
        }
        let mut target = 0;
        for rx in replies {
            let DrainAck { matches_emitted } = self.recv_reply(&rx);
            target += matches_emitted;
        }
        target
    }

    fn report_worker(&mut self, worker: usize) -> WorkerReport {
        let (tx, rx) = channel();
        self.send_to_worker(worker, WorkerMsg::Report { reply: tx });
        self.recv_reply(&rx)
    }

    fn buffer_match_batch(&mut self, (_, matches): MatchBatch) {
        self.stats.match_batches_received += 1;
        self.matches_received += matches.len() as u64;
        self.total_matches += matches.len() as u64;
        self.buffered.extend(matches);
    }

    /// Non-blocking drain of everything currently in the aggregation
    /// channel. Returns the number of batches drained.
    fn drain_pending_matches(&mut self) -> u64 {
        let mut drained = 0;
        while let Ok(batch) = self.match_rx.try_recv() {
            self.buffer_match_batch(batch);
            drained += 1;
        }
        drained
    }

    /// Blocks briefly for one match batch (used while a worker input channel
    /// is full, to guarantee forward progress without spinning). Tolerates a
    /// disconnected channel because it also runs during `Drop`, where the
    /// workers may already be gone.
    fn drain_one_match_batch(&mut self) {
        if let Ok(batch) = self.match_rx.recv_timeout(CONTROL_POLL) {
            self.buffer_match_batch(batch);
        }
    }

    fn flush_buffered<S: MatchSink + ?Sized>(&mut self, sink: &mut S) -> u64 {
        self.drain_pending_matches();
        let mut delivered = 0;
        while let Some((q, m)) = self.buffered.pop_front() {
            sink.on_match(q, m);
            delivered += 1;
        }
        delivered
    }

    /// Recomputes the global retention window with the same rule as the
    /// sequential processor ([`retention_for_windows`]) and broadcasts it to
    /// every replica. Only called with at least one registered query —
    /// `deregister` skips the recompute when the last query leaves, which
    /// mirrors the sequential "keep the current retention on empty"
    /// behaviour.
    fn broadcast_retention(&mut self) {
        debug_assert!(!self.windows.is_empty());
        let retention = retention_for_windows(self.windows.values().copied());
        self.retention = retention;
        for w in 0..self.workers.len() {
            self.send_to_worker(w, WorkerMsg::SetRetention(retention));
        }
    }
}

impl Drop for ParallelStreamProcessor {
    fn drop(&mut self) {
        for w in 0..self.workers.len() {
            // Best effort: a full channel drains through the normal path; a
            // disconnected one means the worker is already gone.
            let mut msg = Some(WorkerMsg::Shutdown);
            loop {
                match self.workers[w].tx.try_send(msg.take().expect("msg")) {
                    Ok(()) => break,
                    Err(TrySendError::Full(m)) => {
                        msg = Some(m);
                        self.drain_one_match_batch();
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
        }
        for handle in &mut self.workers {
            if let Some(join) = handle.join.take() {
                let _ = join.join();
            }
        }
    }
}
