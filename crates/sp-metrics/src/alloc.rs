//! Feature-gated allocation accounting (`count-allocs`).
//!
//! Installs a [`#[global_allocator]`](std::alloc::GlobalAlloc) that wraps
//! the system allocator and counts every heap allocation and allocated
//! byte with relaxed atomics. Linking any binary against `sp-metrics` with
//! the `count-allocs` feature activates the counting allocator
//! process-wide; with the feature off this module does not exist and the
//! crate keeps its `forbid(unsafe_code)` guarantee.
//!
//! The counters are process totals. Callers meter a region by differencing
//! [`alloc_counts`] snapshots around it — the soak benchmark does exactly
//! that across its steady-state measurement slice to derive the
//! `alloc.allocs_per_edge` / `alloc.bytes_per_edge` metrics. Readings are
//! only meaningful on single-threaded regions or when concurrent activity
//! is accounted for by the caller.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts allocations and allocated bytes.
/// Deallocations are uncounted: the counters measure allocator *pressure*
/// (how often the hot path asks for memory), not live footprint.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter updates have no safety
// obligations.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth realloc is allocator traffic like any other; count the
        // newly requested bytes beyond the old size.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

/// Process-lifetime totals: `(allocations, bytes requested)`. Difference
/// two snapshots to meter a region.
pub fn alloc_counts() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_advance_on_allocation() {
        let (a0, b0) = alloc_counts();
        let v: Vec<u64> = Vec::with_capacity(1024);
        let (a1, b1) = alloc_counts();
        assert!(a1 > a0, "allocation count must advance");
        assert!(b1 - b0 >= 8 * 1024, "byte count must cover the request");
        drop(v);
    }
}
