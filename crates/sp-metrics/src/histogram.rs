//! Log-bucketed latency histogram with a lock-free, allocation-free record
//! path.
//!
//! The bucket layout is *log-linear* (the scheme used by HdrHistogram and the
//! tokio runtime metrics): each power-of-two octave is split into
//! [`SUB_BUCKETS`] linear sub-buckets, so any recorded value lands in a
//! bucket whose width is at most `1/SUB_BUCKETS` of its lower bound. With 16
//! sub-buckets the worst-case relative quantile error is 6.25%, constant
//! across nine decades of nanosecond latencies.
//!
//! Recording touches only relaxed atomics — histograms can be shared across
//! runtime workers and sampled concurrently by the exporter without locks —
//! and [`HistogramSnapshot`]s merge associatively, so per-worker histograms
//! aggregate to exactly the histogram a single shared instance would have
//! produced.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave. Must be a power of two.
pub const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros(); // 4

/// Total number of buckets: the linear group for values `0..SUB_BUCKETS`
/// plus one group of `SUB_BUCKETS` sub-buckets per octave up to `u64::MAX`
/// (whose top bit yields group index `64 - SUB_BITS`, hence the `+ 1`).
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// Index of the bucket a value is recorded into.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    // `msb >= SUB_BITS` here, so the shift is non-negative and the offset
    // lands in `0..SUB_BUCKETS`.
    let msb = 63 - value.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let offset = ((value >> (msb - SUB_BITS)) as usize) - SUB_BUCKETS;
    group * SUB_BUCKETS + offset
}

/// Smallest value that maps to bucket `index` (the bucket's lower bound).
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    let group = index / SUB_BUCKETS;
    let offset = (index % SUB_BUCKETS) as u64;
    if group == 0 {
        offset
    } else {
        (SUB_BUCKETS as u64 + offset) << (group - 1)
    }
}

/// A concurrent log-linear histogram of `u64` values (typically nanoseconds).
///
/// All mutation goes through `&self` with relaxed atomics: the record path
/// performs three `fetch_add`s and two min/max updates, allocates nothing,
/// and never blocks. Use one instance shared across threads, or one per
/// worker merged at read time via [`HistogramSnapshot::merge`].
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock-free, allocation-free, relaxed ordering.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current contents into an owned, mergeable snapshot.
    ///
    /// Concurrent recording may race the copy (counts are not a single
    /// atomic transaction), but every individual bucket value read is exact
    /// and the snapshot's `count` is recomputed from the buckets so the
    /// percentile walk is always internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`LogHistogram`]'s state: mergeable across workers and
/// queryable for percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no recorded values.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Fold another snapshot into this one. Merging is commutative and
    /// associative: merging per-worker histograms in any order yields the
    /// histogram a single shared instance would have recorded.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// holding the `ceil(q * count)`-th smallest recorded value (so values
    /// below [`SUB_BUCKETS`] are reported exactly, larger ones with at most
    /// `1/SUB_BUCKETS` relative error, and the result never exceeds the true
    /// value). Returns `None` if the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target value, 1-based; q = 0 maps to the first value.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The bucket's lower bound can undershoot the recorded
                // minimum (e.g. a single sample of 1000 reports p50 = the
                // bucket floor); clamp into the observed range instead.
                return Some(bucket_lower_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// p50 / p90 / p99 / p99.9 / max, as a fixed summary for exporters.
    pub fn percentiles(&self) -> PercentileSummary {
        PercentileSummary {
            count: self.count,
            p50: self.percentile(0.50).unwrap_or(0),
            p90: self.percentile(0.90).unwrap_or(0),
            p99: self.percentile(0.99).unwrap_or(0),
            p999: self.percentile(0.999).unwrap_or(0),
            max: self.max().unwrap_or(0),
        }
    }
}

/// The fixed percentile ladder reported by exporters and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PercentileSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest recorded value.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic 64-bit LCG (same constants as the runtime's synthetic
    /// stream generator) — keeps the oracle test seeded without a `rand`
    /// dependency.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 ^ (self.0 >> 33)
        }
    }

    #[test]
    fn small_values_are_exact() {
        // Values below SUB_BUCKETS get a bucket each: boundaries are exact.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_at_octave_edges() {
        // The lower bound of every bucket must map back to that bucket, and
        // the value one below must map to the previous bucket.
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower_bound(i);
            if i > 0 {
                assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
                assert_eq!(bucket_index(lo - 1), i - 1, "predecessor of bucket {i}");
            }
        }
        // Spot-check octave edges explicitly.
        for &v in &[16u64, 31, 32, 63, 64, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v);
            if i + 1 < NUM_BUCKETS {
                assert!(v < bucket_lower_bound(i + 1));
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut x = 1u64;
        while x < u64::MAX / 3 {
            let i = bucket_index(x);
            let lo = bucket_lower_bound(i);
            assert!(lo <= x);
            let err = (x - lo) as f64 / x as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "value {x}: error {err}");
            x = x.wrapping_mul(3).wrapping_add(7);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 1000, 123456]);
        let b = mk(&[2, 2, 2, 999999999]);
        let c = mk(&[77, 88, u64::MAX]);

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // a ∪ b == b ∪ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        assert_eq!(ab_c.count(), 11);
        assert_eq!(ab_c.max(), Some(u64::MAX));
        assert_eq!(ab_c.min(), Some(1));
    }

    #[test]
    fn merged_workers_equal_shared_instance() {
        // Recording split across N "workers" then merged must equal one
        // shared histogram fed the full stream.
        let shared = LogHistogram::new();
        let workers: Vec<LogHistogram> = (0..4).map(|_| LogHistogram::new()).collect();
        let mut rng = Lcg(42);
        for k in 0..10_000u64 {
            let v = rng.next() >> (rng.next() % 50);
            shared.record(v);
            workers[(k % 4) as usize].record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        for w in &workers {
            merged.merge(&w.snapshot());
        }
        assert_eq!(merged, shared.snapshot());
    }

    #[test]
    fn percentiles_are_monotone_on_adversarial_distributions() {
        let cases: Vec<Vec<u64>> = vec![
            vec![0; 1000],                                             // all zero
            vec![u64::MAX; 10],                                        // all max
            (0..1000u64).collect(),                                    // uniform ramp
            (0..64).map(|k| 1u64 << k).collect(),                      // one per octave
            std::iter::repeat_n(7u64, 999).chain([1 << 40]).collect(), // extreme outlier
            vec![15, 16, 17], // straddling the linear/log edge
        ];
        for vals in cases {
            let h = LogHistogram::new();
            for &v in &vals {
                h.record(v);
            }
            let s = h.snapshot();
            let mut prev = 0u64;
            for step in 0..=1000 {
                let q = step as f64 / 1000.0;
                let p = s.percentile(q).unwrap();
                assert!(p >= prev, "percentile({q}) = {p} < {prev}");
                prev = p;
            }
            assert!(s.percentile(1.0).unwrap() <= s.max().unwrap());
            assert!(s.percentile(0.0).unwrap() >= s.min().unwrap());
        }
    }

    #[test]
    fn seeded_randomized_comparison_against_sorted_oracle() {
        let mut rng = Lcg(0x9E3779B97F4A7C15);
        let h = LogHistogram::new();
        let mut oracle: Vec<u64> = Vec::new();
        for _ in 0..50_000 {
            // Mix of magnitudes: shifts spread values across octaves the way
            // real latency distributions do.
            let v = rng.next() >> (rng.next() % 56);
            h.record(v);
            oracle.push(v);
        }
        oracle.sort_unstable();
        let s = h.snapshot();
        assert_eq!(s.count(), oracle.len() as u64);
        assert_eq!(s.min(), oracle.first().copied());
        assert_eq!(s.max(), oracle.last().copied());
        for &q in &[0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * oracle.len() as f64).ceil() as usize).clamp(1, oracle.len());
            let truth = oracle[rank - 1];
            let est = s.percentile(q).unwrap();
            // The estimate is the bucket lower bound: never above the truth,
            // and within the 1/SUB_BUCKETS relative error envelope below it.
            assert!(est <= truth, "q={q}: est {est} > truth {truth}");
            let tolerance = truth / SUB_BUCKETS as u64 + 1;
            assert!(
                truth - est <= tolerance,
                "q={q}: est {est} too far below truth {truth}"
            );
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for k in 0..10_000u64 {
                        h.record(t * 1_000_000 + k);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
