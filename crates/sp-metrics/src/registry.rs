//! Named-metric registry with lock-free handles.
//!
//! Registration (naming a counter/gauge/histogram) takes a mutex once and
//! hands back an `Arc`-backed handle; every subsequent `inc`/`set`/`record`
//! on the handle is a relaxed atomic with no lock and no allocation. The
//! registry itself is `Clone + Send + Sync`, so the exporter can sample on
//! one thread while workers record on others.

use crate::histogram::{HistogramSnapshot, LogHistogram};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter (events, edges, stalls, total
/// nanoseconds spent in a stage, ...).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter detached from any registry (useful in tests).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, live edges, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge detached from any registry (useful in tests).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (which may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared handle to a log-bucketed histogram (see
/// [`LogHistogram`](crate::LogHistogram)).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<LogHistogram>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(LogHistogram::new()))
    }
}

impl Histogram {
    /// A histogram detached from any registry (useful in tests).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Record one value. Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// Copy the current contents into an owned, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// A registry of named metrics.
///
/// Cloning shares the underlying store; registering the same name twice
/// returns a handle to the same metric, so independent components can safely
/// register "their" metrics without coordination.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::default();
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Sample every registered metric into an owned snapshot, sorted by
    /// metric name within each kind.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, i64)> = inner
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> = inner
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of every metric in a registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Level of the gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Snapshot of the histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("edges");
        let b = reg.counter("edges");
        a.add(3);
        b.inc();
        assert_eq!(reg.snapshot().counter("edges"), Some(4));
    }

    #[test]
    fn gauges_go_up_and_down() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(reg.snapshot().gauge("depth"), Some(-1));
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").add(2);
        reg.histogram("lat").record(100);
        let s = reg.snapshot();
        assert_eq!(s.counters[0].0, "a.first");
        assert_eq!(s.counters[1].0, "z.last");
        assert_eq!(s.histogram("lat").unwrap().count(), 1);
        assert!(s.histogram("missing").is_none());
    }

    #[test]
    fn handles_record_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let h = reg.histogram("v");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for k in 0..1000 {
                        c.inc();
                        h.record(k);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = reg.snapshot();
        assert_eq!(s.counter("n"), Some(4000));
        assert_eq!(s.histogram("v").unwrap().count(), 4000);
    }
}
