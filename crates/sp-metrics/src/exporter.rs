//! Time-series export: periodic registry snapshots rendered as JSON-lines or
//! CSV, plus a human-readable dashboard table.
//!
//! The exporter is *caller-driven*: it spawns no thread. Call
//! [`SnapshotExporter::tick`] from wherever the application already loops
//! (the ingest loop, a batch boundary, ...) and a sample is written whenever
//! the configured interval has elapsed. This keeps the exporter usable in
//! single-threaded benchmarks and makes tests deterministic.

use crate::histogram::PercentileSummary;
use crate::registry::{MetricsRegistry, MetricsSnapshot};
use std::io::{self, Write};
use std::time::{Duration, Instant};

/// Output format of the time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExportFormat {
    /// One JSON object per sample per line.
    #[default]
    JsonLines,
    /// Long-format CSV: `elapsed_s,metric,field,value` rows.
    Csv,
}

/// Configuration for metrics collection and export.
///
/// `enabled: false` is the zero-cost default: components consult this flag
/// once at construction and skip registering instruments entirely, so the
/// hot path pays a single `Option` branch when metrics are off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Master switch. When `false`, no instruments are registered and no
    /// samples are written.
    pub enabled: bool,
    /// Minimum wall-clock time between samples written by [`SnapshotExporter::tick`].
    pub sample_interval: Duration,
    /// Time-series output format.
    pub format: ExportFormat,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            sample_interval: Duration::from_secs(1),
            format: ExportFormat::JsonLines,
        }
    }
}

impl MetricsConfig {
    /// An enabled configuration with the default 1 s sample interval.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Set the sample interval.
    pub fn sample_interval(mut self, interval: Duration) -> Self {
        self.sample_interval = interval;
        self
    }

    /// Set the output format.
    pub fn format(mut self, format: ExportFormat) -> Self {
        self.format = format;
        self
    }
}

/// Writes periodic snapshots of a [`MetricsRegistry`] as a time series.
pub struct SnapshotExporter {
    registry: MetricsRegistry,
    config: MetricsConfig,
    out: Box<dyn Write + Send>,
    started: Instant,
    last_sample: Option<Instant>,
    samples_written: u64,
    csv_header_written: bool,
}

impl std::fmt::Debug for SnapshotExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotExporter")
            .field("config", &self.config)
            .field("samples_written", &self.samples_written)
            .finish_non_exhaustive()
    }
}

impl SnapshotExporter {
    /// An exporter sampling `registry` into `out` per `config`.
    pub fn new(
        registry: MetricsRegistry,
        config: MetricsConfig,
        out: Box<dyn Write + Send>,
    ) -> Self {
        Self {
            registry,
            config,
            out,
            started: Instant::now(),
            last_sample: None,
            samples_written: 0,
            csv_header_written: false,
        }
    }

    /// Number of samples written so far.
    pub fn samples_written(&self) -> u64 {
        self.samples_written
    }

    /// Write a sample if the configured interval has elapsed since the last
    /// one (or if none has been written yet). Returns `Ok(true)` when a
    /// sample was written. No-op when the config is disabled.
    pub fn tick(&mut self) -> io::Result<bool> {
        if !self.config.enabled {
            return Ok(false);
        }
        let due = match self.last_sample {
            None => true,
            Some(t) => t.elapsed() >= self.config.sample_interval,
        };
        if !due {
            return Ok(false);
        }
        self.force_sample()?;
        Ok(true)
    }

    /// Write a sample unconditionally (still a no-op when disabled).
    pub fn force_sample(&mut self) -> io::Result<()> {
        if !self.config.enabled {
            return Ok(());
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let snapshot = self.registry.snapshot();
        match self.config.format {
            ExportFormat::JsonLines => write_jsonl(&mut self.out, elapsed, &snapshot)?,
            ExportFormat::Csv => {
                if !self.csv_header_written {
                    writeln!(self.out, "elapsed_s,metric,field,value")?;
                    self.csv_header_written = true;
                }
                write_csv(&mut self.out, elapsed, &snapshot)?;
            }
        }
        self.out.flush()?;
        self.last_sample = Some(Instant::now());
        self.samples_written += 1;
        Ok(())
    }
}

/// Escape a metric name for embedding in a JSON string. Names are plain
/// identifiers in practice; this keeps arbitrary names safe anyway.
fn json_escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_jsonl(out: &mut dyn Write, elapsed: f64, s: &MetricsSnapshot) -> io::Result<()> {
    let mut line = format!("{{\"elapsed_s\":{elapsed:.3}");
    line.push_str(",\"counters\":{");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("\"{}\":{v}", json_escape(name)));
    }
    line.push_str("},\"gauges\":{");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("\"{}\":{v}", json_escape(name)));
    }
    line.push_str("},\"histograms\":{");
    for (i, (name, h)) in s.histograms.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let p = h.percentiles();
        line.push_str(&format!(
            "\"{}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{},\"mean\":{:.1}}}",
            json_escape(name),
            p.count,
            p.p50,
            p.p90,
            p.p99,
            p.p999,
            p.max,
            h.mean().unwrap_or(0.0),
        ));
    }
    line.push_str("}}");
    writeln!(out, "{line}")
}

fn write_csv(out: &mut dyn Write, elapsed: f64, s: &MetricsSnapshot) -> io::Result<()> {
    // CSV quoting: names with commas/quotes get wrapped and doubled.
    let quote = |name: &str| -> String {
        if name.contains(',') || name.contains('"') || name.contains('\n') {
            format!("\"{}\"", name.replace('"', "\"\""))
        } else {
            name.to_string()
        }
    };
    for (name, v) in &s.counters {
        writeln!(out, "{elapsed:.3},{},value,{v}", quote(name))?;
    }
    for (name, v) in &s.gauges {
        writeln!(out, "{elapsed:.3},{},value,{v}", quote(name))?;
    }
    for (name, h) in &s.histograms {
        let p = h.percentiles();
        let n = quote(name);
        writeln!(out, "{elapsed:.3},{n},count,{}", p.count)?;
        writeln!(out, "{elapsed:.3},{n},p50,{}", p.p50)?;
        writeln!(out, "{elapsed:.3},{n},p90,{}", p.p90)?;
        writeln!(out, "{elapsed:.3},{n},p99,{}", p.p99)?;
        writeln!(out, "{elapsed:.3},{n},p999,{}", p.p999)?;
        writeln!(out, "{elapsed:.3},{n},max,{}", p.max)?;
    }
    Ok(())
}

/// Render a point-in-time snapshot as a fixed-width dashboard table, the
/// human-facing counterpart of the JSONL/CSV series (used by the
/// `observed_firehose` example).
pub fn render_dashboard(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !s.counters.is_empty() || !s.gauges.is_empty() {
        out.push_str(&format!("{:<44} {:>16}\n", "counter / gauge", "value"));
        out.push_str(&format!("{:-<44} {:->16}\n", "", ""));
        for (name, v) in &s.counters {
            out.push_str(&format!("{name:<44} {v:>16}\n"));
        }
        for (name, v) in &s.gauges {
            out.push_str(&format!("{name:<44} {v:>16}\n"));
        }
    }
    if !s.histograms.is_empty() {
        out.push_str(&format!(
            "\n{:<34} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "histogram", "count", "p50", "p90", "p99", "p99.9", "max"
        ));
        out.push_str(&format!(
            "{:-<34} {:->9} {:->10} {:->10} {:->10} {:->10} {:->10}\n",
            "", "", "", "", "", "", ""
        ));
        for (name, h) in &s.histograms {
            let p: PercentileSummary = h.percentiles();
            out.push_str(&format!(
                "{name:<34} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                p.count, p.p50, p.p90, p.p99, p.p999, p.max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A `Write` sink capturing into a shared buffer.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("stream.edges_total").add(42);
        reg.gauge("runtime.queue_depth.w0").set(3);
        let h = reg.histogram("match.latency_ns");
        for v in [100, 200, 300, 10_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn disabled_exporter_writes_nothing() {
        let cap = Capture::default();
        let mut ex = SnapshotExporter::new(
            sample_registry(),
            MetricsConfig::default(),
            Box::new(cap.clone()),
        );
        assert!(!ex.tick().unwrap());
        ex.force_sample().unwrap();
        assert_eq!(ex.samples_written(), 0);
        assert!(cap.contents().is_empty());
    }

    #[test]
    fn jsonl_sample_is_valid_shape() {
        let cap = Capture::default();
        let mut ex = SnapshotExporter::new(
            sample_registry(),
            MetricsConfig::enabled(),
            Box::new(cap.clone()),
        );
        assert!(ex.tick().unwrap()); // first tick always samples
        assert!(!ex.tick().unwrap()); // interval (1 s) not yet elapsed
        let text = cap.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let line = lines[0];
        assert!(line.starts_with("{\"elapsed_s\":"));
        assert!(line.contains("\"stream.edges_total\":42"));
        assert!(line.contains("\"runtime.queue_depth.w0\":3"));
        assert!(line.contains("\"match.latency_ns\":{\"count\":4"));
        assert!(line.ends_with("}}"));
    }

    #[test]
    fn csv_sample_has_header_and_rows() {
        let cap = Capture::default();
        let mut ex = SnapshotExporter::new(
            sample_registry(),
            MetricsConfig::enabled()
                .sample_interval(Duration::from_secs(0))
                .format(ExportFormat::Csv),
            Box::new(cap.clone()),
        );
        ex.force_sample().unwrap();
        ex.force_sample().unwrap();
        let text = cap.contents();
        assert!(text.starts_with("elapsed_s,metric,field,value\n"));
        // Header appears exactly once across samples.
        assert_eq!(text.matches("elapsed_s,metric,field,value").count(), 1);
        assert_eq!(text.matches(",stream.edges_total,value,42").count(), 2);
        assert!(text.contains(",match.latency_ns,p50,"));
        assert!(text.contains(",match.latency_ns,p999,"));
    }

    #[test]
    fn dashboard_renders_all_metrics() {
        let table = render_dashboard(&sample_registry().snapshot());
        assert!(table.contains("stream.edges_total"));
        assert!(table.contains("runtime.queue_depth.w0"));
        assert!(table.contains("match.latency_ns"));
        assert!(table.contains("p99.9"));
    }
}
