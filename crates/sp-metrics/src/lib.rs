//! # sp-metrics — stream-level telemetry
//!
//! Observability substrate for the StreamPattern engine: the paper's §6.4
//! argues from a *measured* cost split between isomorphism search and
//! SJ-Tree maintenance, and this crate makes the same measurement available
//! continuously — per-stage timing spans, match-detection latency
//! percentiles, and a time-series exporter — instead of end-of-run totals.
//!
//! Three layers:
//!
//! * [`LogHistogram`] / [`HistogramSnapshot`] — log-bucketed latency
//!   histograms (p50/p90/p99/p99.9 within 6.25% relative error), lock-free
//!   and allocation-free on the record path, mergeable across runtime
//!   workers;
//! * [`MetricsRegistry`] — named [`Counter`] / [`Gauge`] / [`Histogram`]
//!   handles: registration takes a mutex once, every record afterwards is a
//!   relaxed atomic;
//! * [`SnapshotExporter`] — caller-driven sampling into JSON-lines or CSV
//!   time series, plus [`render_dashboard`] for a human-readable table,
//!   configured by [`MetricsConfig`] (disabled by default: the hot path pays
//!   one branch when metrics are off).
//!
//! ```
//! use sp_metrics::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let edges = reg.counter("stream.edges_total");
//! let latency = reg.histogram("match.latency_ns");
//! edges.inc();
//! latency.record(1_250);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("stream.edges_total"), Some(1));
//! assert_eq!(snap.histogram("match.latency_ns").unwrap().count(), 1);
//! ```

// The optional `count-allocs` feature installs a counting
// `#[global_allocator]`, which requires an `unsafe impl GlobalAlloc`; that
// module carries the only `allow(unsafe_code)`. Without the feature the
// crate-wide forbid is intact.
#![cfg_attr(not(feature = "count-allocs"), forbid(unsafe_code))]
#![cfg_attr(feature = "count-allocs", deny(unsafe_code))]
#![warn(missing_docs)]

#[cfg(feature = "count-allocs")]
pub mod alloc;
mod exporter;
mod histogram;
mod registry;

#[cfg(feature = "count-allocs")]
pub use alloc::alloc_counts;
pub use exporter::{render_dashboard, ExportFormat, MetricsConfig, SnapshotExporter};
pub use histogram::{
    bucket_lower_bound, HistogramSnapshot, LogHistogram, PercentileSummary, NUM_BUCKETS,
    SUB_BUCKETS,
};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
