//! Multi-query monitoring: one netflow stream, three continuous patterns.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_pattern_monitor
//! ```
//!
//! This is the StreamWorks deployment story: a single [`StreamProcessor`]
//! owns one shared data graph while three security patterns — exfiltration,
//! scanning and beaconing — watch the same stream, each with its own
//! execution strategy and time window. The edge-type dispatch index hands
//! every edge only to the queries whose pattern can use it, so e.g. the
//! ICMP-only scan detector never touches a TCP edge.

use sp_datasets::NetflowConfig;
use sp_graph::{EdgeEvent, Timestamp};
use sp_query::QueryGraph;
use streampattern::{QueryId, Schema, Strategy, StrategySpec, StreamProcessor};

/// attacker -TCP-> victim -ESP-> c2 -GRE-> sink (Figure 1c of the paper).
fn exfiltration_query(schema: &Schema) -> QueryGraph {
    let ip = schema.vertex_type("ip").unwrap();
    let mut q = QueryGraph::new("exfiltration");
    let attacker = q.add_vertex(ip);
    let victim = q.add_vertex(ip);
    let c2 = q.add_vertex(ip);
    let sink = q.add_vertex(ip);
    q.add_edge(attacker, victim, schema.edge_type("TCP").unwrap());
    q.add_edge(victim, c2, schema.edge_type("ESP").unwrap());
    q.add_edge(c2, sink, schema.edge_type("GRE").unwrap());
    q
}

/// One scanner probing three distinct hosts over ICMP.
fn scan_query(schema: &Schema) -> QueryGraph {
    let ip = schema.vertex_type("ip").unwrap();
    let icmp = schema.edge_type("ICMP").unwrap();
    let mut q = QueryGraph::new("icmp-scan");
    let scanner = q.add_vertex(ip);
    for _ in 0..3 {
        let target = q.add_vertex(ip);
        q.add_edge(scanner, target, icmp);
    }
    q
}

/// A compromised host and its controller exchanging UDP in both directions
/// within a tight window (command-and-control beaconing).
fn beaconing_query(schema: &Schema) -> QueryGraph {
    let ip = schema.vertex_type("ip").unwrap();
    let udp = schema.edge_type("UDP").unwrap();
    let mut q = QueryGraph::new("udp-beaconing");
    let bot = q.add_vertex(ip);
    let c2 = q.add_vertex(ip);
    q.add_edge(bot, c2, udp);
    q.add_edge(c2, bot, udp);
    q
}

fn main() {
    // Background traffic plus statistics from its first quarter.
    let dataset = NetflowConfig {
        num_hosts: 2_000,
        num_edges: 40_000,
        ..NetflowConfig::default()
    }
    .generate();
    let schema = dataset.schema.clone();
    let ip = schema.vertex_type("ip").unwrap();

    // Inject a few instances of each pattern so the demo has alerts to show,
    // using host ids far outside the generator's range.
    let mut events = dataset.events.clone();
    let step = events.len() / 7;
    for k in 0..3u64 {
        let base = 2_000_000 + 100 * k;
        let at = step * (2 * k as usize + 1);
        let t0 = events[at].timestamp.0;
        let tcp = schema.edge_type("TCP").unwrap();
        let esp = schema.edge_type("ESP").unwrap();
        let gre = schema.edge_type("GRE").unwrap();
        let icmp = schema.edge_type("ICMP").unwrap();
        let udp = schema.edge_type("UDP").unwrap();
        let attack = [
            // exfiltration chain
            EdgeEvent::homogeneous(base, base + 1, ip, tcp, Timestamp(t0)),
            EdgeEvent::homogeneous(base + 1, base + 2, ip, esp, Timestamp(t0 + 1)),
            EdgeEvent::homogeneous(base + 2, base + 3, ip, gre, Timestamp(t0 + 2)),
            // scan burst
            EdgeEvent::homogeneous(base + 10, base + 11, ip, icmp, Timestamp(t0 + 3)),
            EdgeEvent::homogeneous(base + 10, base + 12, ip, icmp, Timestamp(t0 + 4)),
            EdgeEvent::homogeneous(base + 10, base + 13, ip, icmp, Timestamp(t0 + 5)),
            // beacon round trip
            EdgeEvent::homogeneous(base + 20, base + 21, ip, udp, Timestamp(t0 + 6)),
            EdgeEvent::homogeneous(base + 21, base + 20, ip, udp, Timestamp(t0 + 7)),
        ];
        for (i, e) in attack.iter().enumerate() {
            events.insert((at + i).min(events.len()), *e);
        }
    }

    // One processor, one shared graph, three registered patterns — each with
    // its own strategy and window.
    let mut proc = StreamProcessor::new(schema.clone())
        .with_estimator(dataset.estimator_from_prefix(dataset.len() / 4));
    let exfil = proc
        .register(exfiltration_query(&schema), StrategySpec::Auto, Some(1_000))
        .expect("exfiltration registers");
    let scan = proc
        .register(scan_query(&schema), Strategy::SingleLazy, Some(100))
        .expect("scan registers");
    let beacon = proc
        .register(beaconing_query(&schema), Strategy::PathLazy, Some(200))
        .expect("beaconing registers");
    let names: Vec<(QueryId, String)> = [exfil, scan, beacon]
        .iter()
        .map(|&q| {
            let n = proc
                .engine_for(q)
                .map(|e| e.query().name().to_owned())
                .unwrap_or_default();
            (q, n)
        })
        .collect();
    let name = |q: QueryId| {
        names
            .iter()
            .find(|(id, _)| *id == q)
            .map(|(_, n)| n.clone())
            .unwrap_or_default()
    };
    println!(
        "registered {} queries: {exfil}={}, {scan}={}, {beacon}={}\n",
        proc.num_queries(),
        name(exfil),
        name(scan),
        name(beacon)
    );

    let start = std::time::Instant::now();
    let mut alerts = [0u64; 3];
    for ev in &events {
        for (qid, m) in proc.process(ev) {
            let slot = [exfil, scan, beacon]
                .iter()
                .position(|&q| q == qid)
                .expect("known query");
            alerts[slot] += 1;
            if alerts[slot] <= 3 {
                let root = m.vertex_pairs().next().map(|(_, d)| d.0).unwrap_or(0);
                println!(
                    "[{:<12}] alert at t={}: rooted at host {root} (span {} ticks)",
                    name(qid),
                    ev.timestamp,
                    m.duration()
                );
            }
        }
    }
    let elapsed = start.elapsed();

    println!(
        "\n=== summary ({} events in {elapsed:.1?}) ===",
        events.len()
    );
    println!(
        "shared graph: {} live edges, {} live vertices (one copy for all queries)",
        proc.graph().num_edges(),
        proc.graph().num_vertices()
    );
    let total = proc.profile();
    for (i, qid) in [exfil, scan, beacon].iter().enumerate() {
        let p = proc.profile_for(*qid).expect("registered");
        println!(
            "{:<14} alerts={:<4} dispatched {:>6}/{} edges ({:>4.1}%), window tW={:?}",
            name(*qid),
            alerts[i],
            p.edges_processed,
            total.edges_processed,
            100.0 * p.edges_processed as f64 / total.edges_processed as f64,
            proc.engine_for(*qid).unwrap().window(),
        );
    }
    println!(
        "vertex-type conflicts observed on the stream: {}",
        total.vertex_type_conflicts
    );
}
