//! Parallel multi-query monitoring: one netflow firehose, eight continuous
//! patterns, four worker shards.
//!
//! Run with:
//! ```text
//! cargo run --release --example parallel_firehose
//! ```
//!
//! The sequential [`StreamProcessor`] dispatches every edge on one core;
//! [`ParallelStreamProcessor`] shards the registered queries across worker
//! threads by estimated cost, broadcasts batched events over bounded
//! channels, and aggregates `(QueryId, SubgraphMatch)` pairs through one
//! MPSC sink. This example runs the same workload both ways and prints the
//! throughput, the speedup, the shard assignment and the merged per-query
//! profile.

use sp_datasets::{NetflowConfig, QueryGenerator, QueryKind};
use sp_runtime::{ParallelStreamProcessor, RuntimeConfig};
use std::time::Instant;
use streampattern::{Strategy, StreamProcessor};

const WORKERS: usize = 4;

/// Detection window in stream ticks (netflow timestamps are edge indices):
/// a pattern only fires when all its edges arrive within the last `WINDOW`
/// events — the continuous-monitoring setting of the paper.
const WINDOW: Option<u64> = Some(2_000);

fn main() {
    let dataset = NetflowConfig {
        num_hosts: 2_000,
        num_edges: 40_000,
        ..NetflowConfig::default()
    }
    .generate();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 99);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 3 }, 8, &estimator);
    println!(
        "netflow stream: {} edges, {} monitoring queries\n",
        dataset.len(),
        queries.len()
    );

    // Sequential baseline.
    let mut seq = StreamProcessor::new(dataset.schema.clone())
        .with_estimator(estimator.clone())
        .with_statistics(false);
    for q in &queries {
        seq.register(q.clone(), Strategy::SingleLazy, WINDOW)
            .unwrap();
    }
    let start = Instant::now();
    let seq_matches = seq.process_all(dataset.events().iter());
    let seq_elapsed = start.elapsed();
    println!(
        "sequential: {seq_matches} matches in {seq_elapsed:?} ({:.0} edges/s)",
        dataset.len() as f64 / seq_elapsed.as_secs_f64()
    );

    // Parallel runtime: same queries, sharded by estimated cost.
    let mut runtime = ParallelStreamProcessor::new(
        dataset.schema.clone(),
        RuntimeConfig::with_workers(WORKERS).statistics(false),
    )
    .with_estimator(estimator.clone());
    let mut ids = Vec::new();
    for q in &queries {
        ids.push(
            runtime
                .register(q.clone(), Strategy::SingleLazy, WINDOW)
                .unwrap(),
        );
    }
    println!("\nshard assignment (greedy by estimated cost):");
    for (&id, q) in ids.iter().zip(&queries) {
        println!(
            "  {id} {:24} -> worker {} (cost {:.3})",
            q.name(),
            runtime.shard_of(id).unwrap(),
            estimator.estimate_query_cost(q)
        );
    }

    let start = Instant::now();
    let par_matches = runtime.process_all(dataset.events().iter());
    let par_elapsed = start.elapsed();
    println!(
        "\nparallel ({WORKERS} workers): {par_matches} matches in {par_elapsed:?} \
         ({:.0} edges/s, {:.2}x speedup)",
        dataset.len() as f64 / par_elapsed.as_secs_f64(),
        seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64()
    );
    assert_eq!(seq_matches, par_matches, "executions must agree");

    let stats = runtime.stats();
    println!(
        "runtime: {} batches broadcast, {} backpressure stalls",
        stats.batches_sent, stats.backpressure_events
    );

    let report = runtime.shutdown();
    println!("\nper-worker load:");
    for w in &report.workers {
        println!(
            "  worker {}: {} queries, {} matches, {} edges ingested, {} live graph edges",
            w.worker,
            w.per_query.len(),
            w.matches_found,
            w.edges_ingested,
            w.graph_edges_live
        );
    }
    println!(
        "\nmerged profile: {} edges, {} iso searches, {} skipped (lazy), {} complete matches",
        report.profile.edges_processed,
        report.profile.iso_searches,
        report.profile.searches_skipped,
        report.profile.complete_matches
    );
}
