//! Drift-adaptive re-decomposition in action (ROADMAP: "Adaptive
//! re-decomposition").
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_drift
//! ```
//!
//! A SOC-style rule pack watches a netflow stream whose protocol mix flips
//! mid-way (the tunnelling protocols flood while TCP dries up). Each rule's
//! SJ-Tree was ordered by the *phase-1* selectivities, so after the flip the
//! engines search their now-common leaf first — until the drift detector
//! notices the ranking moved and the processor swaps each engine's tree
//! without dropping partial state. The example prints every rule's leaf
//! order before and after, the redecomposition counters, and the post-shift
//! engine work compared against an adaptivity-off twin fed the same stream.

use sp_bench::experiments::drift_rule_pack;
use sp_datasets::{Dataset, NetflowDriftConfig};
use streampattern::{DriftConfig, QueryId, StatsMode, Strategy, StreamProcessor};

fn main() {
    let edges = 12_000;
    let shift_at = 4_000;
    let dataset = NetflowDriftConfig {
        num_hosts: 12_000,
        num_edges: edges,
        shift_at,
        popularity_exponent: 0.5,
        ..NetflowDriftConfig::default()
    }
    .generate();
    let schema = &dataset.schema;
    // The benchmark's flip-sensitive rule pack: every chain pairs protocols
    // from opposite ends of the phase-1 rank order.
    let pack = drift_rule_pack(schema, 4);

    // Phase-1 statistics, decayed so they keep tracking the stream.
    let estimator =
        Dataset::estimator_from_events(&dataset.events()[..shift_at / 2], StatsMode::Decayed(512));

    let build = |adaptive: bool| -> (StreamProcessor, Vec<QueryId>) {
        // Join sharing off: this example compares *per-engine* leaf-search
        // counters between a frozen and an adaptive processor, and the
        // shared join stage would move prefix searches off those counters
        // (and churn table subscriptions on every rebuild). The shared join
        // stage has its own example surface in `soc_rulepack`.
        let mut proc = StreamProcessor::new(dataset.schema.clone())
            .with_estimator(estimator.clone())
            .with_statistics(true)
            .with_join_sharing(false);
        if adaptive {
            proc = proc.with_adaptive(DriftConfig {
                check_interval: 256,
                min_observations: 256,
                confirm_checks: 1,
            });
        }
        let mut ids = Vec::new();
        for q in &pack {
            ids.push(
                proc.register(q.clone(), Strategy::SingleLazy, Some(600))
                    .expect("rule decomposes"),
            );
        }
        (proc, ids)
    };
    let (mut adaptive, ids) = build(true);
    let (mut frozen, _) = build(false);

    let leaf_order = |proc: &StreamProcessor, id: QueryId| -> String {
        let tree = proc.engine_for(id).unwrap().tree().unwrap();
        tree.leaves()
            .iter()
            .map(|&leaf| {
                tree.subgraph(leaf)
                    .primitive(tree.query())
                    .map(|p| p.describe(schema))
                    .unwrap_or_else(|| "?".into())
            })
            .collect::<Vec<_>>()
            .join(" , ")
    };

    println!("phase-1 leaf orders (most selective first):");
    for (&id, q) in ids.iter().zip(&pack) {
        println!("  {:12} {}", q.name(), leaf_order(&adaptive, id));
    }

    let split = dataset
        .events()
        .partition_point(|ev| (ev.timestamp.0 as usize) < shift_at);
    let (pre, post) = dataset.events().split_at(split);
    adaptive.process_all(pre.iter());
    frozen.process_all(pre.iter());
    let adaptive_at_shift = adaptive.profile();
    let frozen_at_shift = frozen.profile();
    let matches_a = adaptive.process_all(post.iter());
    let matches_f = frozen.process_all(post.iter());
    assert_eq!(
        adaptive.total_matches(),
        frozen.total_matches(),
        "adaptivity must not change the match multiset"
    );
    let _ = (matches_a, matches_f);

    println!("\npost-shift leaf orders after drift-triggered re-decomposition:");
    for (&id, q) in ids.iter().zip(&pack) {
        let p = adaptive.profile_for(id).unwrap();
        println!(
            "  {:12} {}   (redecompositions: {})",
            q.name(),
            leaf_order(&adaptive, id),
            p.redecompositions
        );
    }

    let a = adaptive.profile();
    let f = frozen.profile();
    let searches = |end: &streampattern::ProfileCounters,
                    start: &streampattern::ProfileCounters| {
        (end.iso_searches + end.retroactive_searches)
            - (start.iso_searches + start.retroactive_searches)
    };
    let a_s = searches(&a, &adaptive_at_shift);
    let f_s = searches(&f, &frozen_at_shift);
    println!(
        "\npost-shift engine work ({} edges after the flip):",
        post.len()
    );
    println!(
        "  frozen plan : {f_s} leaf searches, {} leaf matches",
        f.leaf_matches - frozen_at_shift.leaf_matches
    );
    println!(
        "  adaptive    : {a_s} leaf searches, {} leaf matches, {} replay searches across {} rebuilds",
        a.leaf_matches - adaptive_at_shift.leaf_matches,
        a.replay_searches,
        a.redecompositions
    );
    println!(
        "  eliminated  : {:.1}% of the frozen plan's post-shift leaf searches",
        100.0 * (1.0 - a_s as f64 / f_s.max(1) as f64)
    );
    println!("\nadaptive stats: {:?}", adaptive.adaptive_stats());
    println!(
        "total matches (both processors): {}",
        adaptive.total_matches()
    );
}
