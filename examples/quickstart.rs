//! Quickstart: register a continuous query and stream edges through it.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example watches for the 2-hop pattern `x -esp-> y -tcp-> z` (a toy
//! version of "a rare tunnelled connection immediately followed by an
//! outbound TCP flow") and prints every occurrence as it completes.

use sp_graph::{EdgeEvent, Schema, Timestamp};
use sp_query::QueryGraph;
use streampattern::{Strategy, StreamProcessor};

fn main() {
    // 1. A schema shared by the stream and the query.
    let mut schema = Schema::new();
    let ip = schema.intern_vertex_type("ip");
    let tcp = schema.intern_edge_type("tcp");
    let esp = schema.intern_edge_type("esp");

    // 2. The pattern: x -esp-> y -tcp-> z.
    let mut query = QueryGraph::new("esp-then-tcp");
    let x = query.add_any_vertex();
    let y = query.add_any_vertex();
    let z = query.add_any_vertex();
    query.add_edge(x, y, esp);
    query.add_edge(y, z, tcp);
    println!("{}", query.describe(&schema));

    // 3. Build the processor and register the query. With no stream
    //    statistics yet the decomposition falls back to a neutral ordering;
    //    see the `strategy_selection` example for statistics-driven strategy
    //    choice, and `multi_pattern_monitor` for several queries sharing one
    //    processor.
    let mut processor = StreamProcessor::new(schema.clone());
    let qid = processor
        .register(query, Strategy::SingleLazy, Some(1_000))
        .expect("query is valid");
    println!(
        "registered as {qid}; SJ-Tree decomposition:\n{}",
        processor
            .engine_for(qid)
            .unwrap()
            .tree()
            .expect("SJ-Tree strategy")
            .describe(&schema)
    );

    // 4. Stream a handful of edges. Host ids are plain integers.
    let stream = [
        EdgeEvent::homogeneous(1, 2, ip, tcp, Timestamp(10)),
        EdgeEvent::homogeneous(3, 4, ip, esp, Timestamp(20)),
        EdgeEvent::homogeneous(4, 5, ip, tcp, Timestamp(25)), // completes 3-esp->4-tcp->5
        EdgeEvent::homogeneous(6, 7, ip, tcp, Timestamp(30)),
        EdgeEvent::homogeneous(9, 6, ip, esp, Timestamp(35)), // completes 9-esp->6-tcp->7 (tcp arrived first)
    ];

    for event in &stream {
        for (query_id, m) in processor.process(event) {
            let pairs: Vec<String> = m.vertex_pairs().map(|(q, d)| format!("{q}->{d}")).collect();
            println!(
                "MATCH for {query_id} at t={}: {{{}}} (span {} ticks)",
                event.timestamp,
                pairs.join(", "),
                m.duration()
            );
        }
    }

    let profile = processor.profile();
    println!(
        "\nprocessed {} edges, found {} matches, {} subgraph-iso searches ({} skipped by lazy search)",
        profile.edges_processed,
        processor.total_matches(),
        profile.iso_searches,
        profile.searches_skipped,
    );
}
