//! Continuous social-media monitoring on an LSBench-like stream.
//!
//! Run with:
//! ```text
//! cargo run --release --example social_media_monitor
//! ```
//!
//! The query is the paper's motivating social example ("tell me when two
//! friends interact with the same post"): a `knows` relationship between two
//! persons, one of whom creates a post that the other one likes:
//!
//! ```text
//!   author -knows-> friend
//!   author -createsPost-> post
//!   friend -likesPost-> post
//! ```
//!
//! Note the cycle (author, friend, post) — DAG-based decompositions of
//! related work cannot express this query exactly, but the SJ-Tree engine
//! handles it like any other.

use sp_datasets::LsbenchConfig;
use sp_query::QueryGraph;
use streampattern::{choose_strategy, ContinuousQueryEngine, StreamProcessor};

fn main() {
    let dataset = LsbenchConfig {
        num_persons: 2_000,
        num_edges: 60_000,
        ..LsbenchConfig::default()
    }
    .generate();
    let schema = dataset.schema.clone();
    let person = schema.vertex_type("person").unwrap();
    let post = schema.vertex_type("post").unwrap();
    let knows = schema.edge_type("knows").unwrap();
    let creates = schema.edge_type("createsPost").unwrap();
    let likes = schema.edge_type("likesPost").unwrap();

    let mut query = QueryGraph::new("friend-likes-my-post");
    let author = query.add_vertex(person);
    let friend = query.add_vertex(person);
    let the_post = query.add_vertex(post);
    query.add_edge(author, friend, knows);
    query.add_edge(author, the_post, creates);
    query.add_edge(friend, the_post, likes);
    println!("{}", query.describe(&schema));

    // Statistics from the static half of the stream.
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let choice = choose_strategy(
        &query,
        &estimator,
        streampattern::RELATIVE_SELECTIVITY_THRESHOLD,
    )
    .expect("query decomposes");
    println!(
        "expected selectivity: single={:.3e} path={:.3e} -> strategy {}",
        choice.expected_single, choice.expected_path, choice.strategy
    );

    let engine = ContinuousQueryEngine::new(query, choice.strategy, &estimator, Some(100_000))
        .expect("engine builds");
    println!(
        "decomposition:\n{}",
        engine.tree().expect("SJ-Tree strategy").describe(&schema)
    );
    let mut proc = StreamProcessor::with_engine(schema.clone(), engine).with_statistics(false);

    let start = std::time::Instant::now();
    let mut alerts = 0u64;
    for ev in dataset.events() {
        for (_, m) in proc.process(ev) {
            alerts += 1;
            if alerts <= 10 {
                let who: Vec<String> = m
                    .vertex_pairs()
                    .map(|(q, d)| format!("{q}={}", d.0 % 100_000_000))
                    .collect();
                println!("alert #{alerts}: {}", who.join("  "));
            }
        }
    }
    let elapsed = start.elapsed();

    let profile = proc.profile();
    println!("\n=== summary ===");
    println!("stream edges      : {}", profile.edges_processed);
    println!("alerts            : {alerts}");
    println!("elapsed           : {elapsed:.1?}");
    println!("iso searches      : {}", profile.iso_searches);
    println!("searches skipped  : {}", profile.searches_skipped);
    println!("retroactive probes: {}", profile.retroactive_searches);
    println!(
        "time in subgraph isomorphism: {:.1}%",
        100.0 * profile.iso_time_fraction()
    );
}
