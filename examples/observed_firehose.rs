//! The SOC rule pack under live telemetry: a netflow firehose through the
//! parallel runtime with a `MetricsRegistry` attached, a time-series
//! exporter appending JSON-lines samples, and the dashboard re-rendered
//! every few batches.
//!
//! Run with:
//! ```text
//! cargo run --release --example observed_firehose
//! ```
//!
//! The closing per-stage split is the paper's §6.4 claim as a live view:
//! nearly all of the per-edge budget is spent in the private engines (leaf
//! isomorphism searches + SJ-Tree joins), not in dispatch or bookkeeping.

use sp_bench::experiments::netflow_rule_pack;
use sp_datasets::NetflowConfig;
use sp_metrics::{render_dashboard, MetricsConfig, MetricsRegistry, SnapshotExporter};
use sp_runtime::{ParallelStreamProcessor, RuntimeConfig};
use std::time::Duration;
use streampattern::Strategy;

fn main() {
    let dataset = NetflowConfig {
        num_hosts: 1_500,
        num_edges: 30_000,
        ..NetflowConfig::default()
    }
    .generate();

    let registry = MetricsRegistry::new();
    let series_path = std::env::temp_dir().join("observed_firehose_series.jsonl");
    let series = std::fs::File::create(&series_path).expect("create series file");
    let mut exporter = SnapshotExporter::new(
        registry.clone(),
        MetricsConfig::enabled().sample_interval(Duration::from_millis(100)),
        Box::new(series),
    );

    let mut runtime =
        ParallelStreamProcessor::new(dataset.schema.clone(), RuntimeConfig::with_workers(2))
            .with_metrics(&registry);
    for rule in netflow_rule_pack(&dataset.schema, 12) {
        runtime
            .register(rule, Strategy::SingleLazy, Some(500))
            .expect("rule decomposes");
    }

    // Feed the firehose in slices; each slice ends on a pipeline drain, so
    // the dashboard shows settled counters, and the exporter appends a
    // sample whenever its interval has elapsed.
    let chunk = 5_000;
    for (i, slice) in dataset.events.chunks(chunk).enumerate() {
        let matches = runtime.process_all(slice.iter());
        exporter.tick().expect("append time-series sample");
        println!(
            "=== after {} edges ({} matches in this slice) ===",
            (i + 1) * chunk.min(slice.len()),
            matches
        );
        println!("{}", render_dashboard(&registry.snapshot()));
    }
    exporter.force_sample().expect("append final sample");

    // The §6.4 split, live: private engines (isomorphism + joins) dominate.
    let snapshot = registry.snapshot();
    let stages = [
        ("ingest", "stage.ingest_ns"),
        ("dispatch", "stage.dispatch_ns"),
        ("shared join", "stage.shared_join_ns"),
        ("shared leaf", "stage.shared_leaf_ns"),
        ("private engine", "stage.private_engine_ns"),
        ("emit", "stage.emit_ns"),
        ("purge", "stage.purge_ns"),
    ];
    let total: u64 = stages
        .iter()
        .filter_map(|(_, name)| snapshot.counter(name))
        .sum();
    println!("=== per-stage time split (both worker replicas) ===");
    for (label, name) in stages {
        let ns = snapshot.counter(name).unwrap_or(0);
        println!(
            "  {label:<15} {:>9.3}s  {:>5.1}%",
            ns as f64 / 1e9,
            100.0 * ns as f64 / total.max(1) as f64
        );
    }
    let latency = snapshot
        .histogram("match.latency_ns")
        .expect("latency series")
        .percentiles();
    println!(
        "detection latency: p50 {:.3}ms  p99 {:.3}ms  over {} matches",
        latency.p50 as f64 / 1e6,
        latency.p99 as f64 / 1e6,
        latency.count
    );
    println!(
        "time series: {} samples appended to {}",
        exporter.samples_written(),
        series_path.display()
    );
    drop(runtime.shutdown());
}
