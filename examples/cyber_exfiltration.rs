//! Continuous detection of an information-exfiltration pattern in synthetic
//! network traffic (Figure 1c of the paper).
//!
//! Run with:
//! ```text
//! cargo run --release --example cyber_exfiltration
//! ```
//!
//! The pattern: a victim browses a compromised web server over HTTP-like
//! traffic (modelled as TCP), downloads a script that opens a tunnel to a
//! botnet command-and-control host (ESP), and finally pushes a large message
//! out (GRE):
//!
//! ```text
//!   attacker -TCP-> victim -ESP-> c2 -GRE-> sink
//! ```
//!
//! The example generates a CAIDA-like background stream, injects a handful of
//! attack instances at random points, and shows that the selectivity-driven
//! engine reports exactly the injected attacks while doing a fraction of the
//! work of the selectivity-agnostic configuration.

use sp_datasets::NetflowConfig;
use sp_graph::{EdgeEvent, Timestamp};
use sp_query::QueryGraph;
use streampattern::{choose_strategy, ContinuousQueryEngine, Strategy, StreamProcessor};

fn main() {
    // Background traffic.
    let dataset = NetflowConfig {
        num_hosts: 2_000,
        num_edges: 30_000,
        ..NetflowConfig::default()
    }
    .generate();
    let schema = dataset.schema.clone();
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("TCP").unwrap();
    let esp = schema.edge_type("ESP").unwrap();
    let gre = schema.edge_type("GRE").unwrap();

    // The exfiltration pattern.
    let mut query = QueryGraph::new("exfiltration");
    let attacker = query.add_vertex(ip);
    let victim = query.add_vertex(ip);
    let c2 = query.add_vertex(ip);
    let sink = query.add_vertex(ip);
    query.add_edge(attacker, victim, tcp);
    query.add_edge(victim, c2, esp);
    query.add_edge(c2, sink, gre);
    println!("{}", query.describe(&schema));

    // Inject 5 attack instances into the stream at known offsets, using host
    // ids far outside the generator's range so we can recognize them.
    let mut events = dataset.events.clone();
    let mut injected = Vec::new();
    for k in 0..5u64 {
        let base = 1_000_000 + 10 * k;
        let at = (5_000 + k * 5_000) as usize;
        let t0 = events[at.min(events.len() - 1)].timestamp.0;
        let attack = [
            EdgeEvent::homogeneous(base, base + 1, ip, tcp, Timestamp(t0 + 1)),
            EdgeEvent::homogeneous(base + 1, base + 2, ip, esp, Timestamp(t0 + 2)),
            EdgeEvent::homogeneous(base + 2, base + 3, ip, gre, Timestamp(t0 + 3)),
        ];
        for (i, e) in attack.iter().enumerate() {
            events.insert((at + i).min(events.len()), *e);
        }
        injected.push(base);
    }

    // Statistics from the first 20% of the stream drive strategy selection.
    let estimator = dataset.estimator_from_prefix(dataset.len() / 5);
    let choice = choose_strategy(
        &query,
        &estimator,
        streampattern::RELATIVE_SELECTIVITY_THRESHOLD,
    )
    .expect("query decomposes");
    println!(
        "relative selectivity = {:.3e} -> chosen strategy: {}",
        choice.relative_selectivity, choice.strategy
    );

    // Run the chosen strategy and the selectivity-agnostic "Single"
    // configuration side by side.
    let mut reports = Vec::new();
    for strategy in [choice.strategy, Strategy::Single] {
        let engine = ContinuousQueryEngine::new(query.clone(), strategy, &estimator, Some(50_000))
            .expect("engine builds");
        let mut proc = StreamProcessor::with_engine(schema.clone(), engine).with_statistics(false);
        let start = std::time::Instant::now();
        let mut detected = 0u64;
        for ev in &events {
            for (_, m) in proc.process(ev) {
                detected += 1;
                let a = m.vertex_pairs().next().map(|(_, d)| d.0).unwrap_or(0);
                println!("  [{strategy}] detected exfiltration rooted at host {a}");
            }
        }
        let elapsed = start.elapsed();
        reports.push((strategy, detected, elapsed, proc.profile()));
    }

    println!("\n=== summary ===");
    println!("injected attacks: {}", injected.len());
    for (strategy, detected, elapsed, profile) in reports {
        println!(
            "{strategy:<12} matches={detected:<3} time={:>8.1?} iso-searches={:<8} skipped={:<8} partial-peak={}",
            elapsed,
            profile.iso_searches,
            profile.searches_skipped,
            profile.peak_partial_matches,
        );
    }
}
