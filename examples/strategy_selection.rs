//! Automatic strategy selection via Relative Selectivity (Section 6.5).
//!
//! Run with:
//! ```text
//! cargo run --release --example strategy_selection
//! ```
//!
//! For a batch of randomly generated 4-edge path queries over a netflow-like
//! stream, the example computes the Relative Selectivity ξ of each query,
//! picks a strategy with the paper's 10⁻³ threshold rule, and then measures
//! all four SJ-Tree strategies to show where the rule's prediction holds.

use sp_datasets::{NetflowConfig, QueryGenerator, QueryKind};
use streampattern::{
    choose_strategy, ContinuousQueryEngine, Strategy, StreamProcessor,
    RELATIVE_SELECTIVITY_THRESHOLD,
};

fn main() {
    let dataset = NetflowConfig {
        num_hosts: 3_000,
        num_edges: 25_000,
        ..NetflowConfig::default()
    }
    .generate();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);

    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 2026);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 4 }, 12, &estimator);
    println!(
        "generated {} valid 4-edge path queries (unseen-wedge queries dropped)\n",
        queries.len()
    );

    println!(
        "{:<14} {:>12} {:>12} | {:>9} {:>9} {:>9} {:>9} | chosen / fastest",
        "query", "xi", "threshold", "Single", "SingleLazy", "Path", "PathLazy"
    );
    let mut rule_hits = 0usize;
    let mut evaluated = 0usize;
    for query in &queries {
        let choice = choose_strategy(query, &estimator, RELATIVE_SELECTIVITY_THRESHOLD)
            .expect("query decomposes");

        let mut timings = Vec::new();
        for strategy in Strategy::SJ_TREE {
            let engine =
                ContinuousQueryEngine::new(query.clone(), strategy, &estimator, Some(1_000_000))
                    .expect("engine builds");
            let mut proc =
                StreamProcessor::with_engine(dataset.schema.clone(), engine).with_statistics(false);
            let start = std::time::Instant::now();
            proc.process_all(dataset.events().iter());
            timings.push((strategy, start.elapsed()));
        }
        let fastest = timings
            .iter()
            .min_by_key(|(_, t)| *t)
            .map(|(s, _)| *s)
            .expect("non-empty");
        let lazy_fastest = timings
            .iter()
            .filter(|(s, _)| s.is_lazy())
            .min_by_key(|(_, t)| *t)
            .map(|(s, _)| *s)
            .expect("non-empty");
        evaluated += 1;
        if lazy_fastest == choice.strategy {
            rule_hits += 1;
        }

        let t = |s: Strategy| {
            timings
                .iter()
                .find(|(x, _)| *x == s)
                .map(|(_, t)| format!("{:>7.1?}", t))
                .unwrap_or_default()
        };
        println!(
            "{:<14} {:>12.3e} {:>12.0e} | {:>9} {:>9} {:>9} {:>9} | {} / {}",
            query.name(),
            choice.relative_selectivity,
            RELATIVE_SELECTIVITY_THRESHOLD,
            t(Strategy::Single),
            t(Strategy::SingleLazy),
            t(Strategy::Path),
            t(Strategy::PathLazy),
            choice.strategy,
            fastest
        );
    }
    println!("\nthe ξ-rule picked the faster lazy variant for {rule_hits}/{evaluated} queries");
}
