//! A SOC-style rule pack with heavy leaf overlap, demonstrating shared-leaf
//! evaluation.
//!
//! Run with:
//! ```text
//! cargo run --release --example soc_rulepack
//! ```
//!
//! Twelve netflow detection rules — scan, beacon, exfiltration and tunnel
//! variants — watch one stream. The rules decompose into a small pool of
//! SJ-Tree leaves (a TCP edge appears in most of them, ICMP and ESP in
//! several), so the registry's `SharedLeafIndex` runs each distinct leaf
//! search **once per edge** and fans the results out. The same pack is then
//! replayed with sharing disabled (every engine re-searching privately) to
//! show the eliminated work; both runs are asserted to find exactly the
//! same number of alerts.

use sp_datasets::NetflowConfig;
use sp_graph::Schema;
use sp_query::QueryGraph;
use streampattern::{Strategy, StreamProcessor};

/// The rule pack: `name: protoA -> protoB [-> protoC]` chains over untyped
/// hosts. Overlap is deliberate — it is what sharing exploits.
fn rule_pack(schema: &Schema) -> Vec<QueryGraph> {
    let rules: [(&str, &[&str]); 12] = [
        ("scan-tcp", &["ICMP", "TCP"]),
        ("exfil-esp", &["TCP", "ESP"]),
        ("scan-udp", &["ICMP", "UDP"]),
        ("exfil-gre", &["TCP", "GRE"]),
        ("tunnel", &["GRE", "ESP"]),
        ("beacon", &["UDP", "UDP"]),
        ("relay", &["TCP", "TCP"]),
        ("probe-chain", &["ICMP", "ICMP"]),
        ("exfil-bounce", &["TCP", "ESP", "TCP"]),
        ("scan-then-flood", &["ICMP", "TCP", "UDP"]),
        ("ah-probe", &["AH", "TCP"]),
        ("v6-relay", &["IPv6", "TCP"]),
    ];
    rules
        .iter()
        .map(|(name, protos)| {
            let mut q = QueryGraph::new(*name);
            let mut prev = q.add_any_vertex();
            for proto in *protos {
                let next = q.add_any_vertex();
                q.add_edge(prev, next, schema.edge_type(proto).expect("protocol"));
                prev = next;
            }
            q
        })
        .collect()
}

fn run(schema: &Schema, events: &[sp_graph::EdgeEvent], sharing: bool) -> StreamProcessor {
    let mut proc = StreamProcessor::new(schema.clone()).with_sharing(sharing);
    for rule in rule_pack(schema) {
        proc.register(rule, Strategy::SingleLazy, Some(500))
            .expect("rule decomposes");
    }
    for ev in events {
        let _ = proc.process(ev);
    }
    proc
}

fn main() {
    let dataset = NetflowConfig {
        num_hosts: 1_500,
        num_edges: 20_000,
        ..NetflowConfig::default()
    }
    .generate();
    let schema = dataset.schema.clone();

    let t0 = std::time::Instant::now();
    let shared = run(&schema, &dataset.events, true);
    let shared_elapsed = t0.elapsed();
    let t1 = std::time::Instant::now();
    let unshared = run(&schema, &dataset.events, false);
    let unshared_elapsed = t1.elapsed();
    assert_eq!(
        shared.total_matches(),
        unshared.total_matches(),
        "sharing must not change the alert set"
    );

    let stats = shared.shared_leaf_stats();
    println!("=== SOC rule pack: 12 rules over one netflow stream ===\n");
    println!(
        "{} rules decompose into {} leaf subscriptions over only {} distinct leaf shapes",
        shared.num_queries(),
        stats.total_subscriptions,
        stats.distinct_leaves
    );
    println!(
        "shared run:   {shared_elapsed:>9.1?}  ({} leaf searches executed)",
        stats.searches_run
    );
    println!("unshared run: {unshared_elapsed:>9.1?}  (every rule re-searching privately)");
    println!(
        "eliminated:   {} searches ({:.1}% of the pack's leaf-search work)\n",
        stats.searches_shared,
        100.0 * stats.elimination_ratio()
    );

    // Per-rule profile: who consumed shared results, who was charged the
    // search time, who matched what.
    println!(
        "{:<16} {:>10} {:>12} {:>9} {:>9} {:>8}",
        "rule", "dispatched", "iso searches", "skipped", "shared", "alerts"
    );
    let mut total_shared = 0;
    for id in shared.query_ids() {
        let engine = shared.engine_for(id).expect("registered");
        let p = engine.profile();
        total_shared += p.leaf_searches_shared;
        println!(
            "{:<16} {:>10} {:>12} {:>9} {:>9} {:>8}",
            engine.query().name(),
            p.edges_processed,
            p.iso_searches,
            p.searches_skipped,
            p.leaf_searches_shared,
            p.complete_matches
        );
    }
    println!(
        "\nper-rule `shared` column sums to {total_shared} = the index's eliminated count {}",
        stats.searches_shared
    );
    assert_eq!(total_shared, stats.searches_shared);

    // The shared JOIN stage on top: rules whose decompositions begin with
    // the same canonical leaf chain share one refcounted prefix table —
    // leaf searches AND hash joins for the prefix run once pack-wide.
    let join = shared.shared_join_stats();
    println!(
        "\nshared join stage: {} prefix tables over {} subscribed rules",
        join.tables, join.subscriptions
    );
    println!(
        "  prefix searches run {} / saved {}, inserts run {} / saved {}, \
         {} prefix-root emissions ({:.1}% of prefix work eliminated)",
        join.searches_run,
        join.searches_saved,
        join.inserts_run,
        join.inserts_saved,
        join.emissions,
        100.0 * join.elimination_ratio()
    );
    println!(
        "alerts: {} (identical with sharing on and off)",
        shared.total_matches()
    );
}
